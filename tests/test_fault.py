"""Resilience tier (``-m fault``): fault injection, recovery, durability.

Locks the three contracts of the PR-10 resilience layer:

* **Elastic recovery is invisible in the numbers.**  A rank SIGKILLed
  mid-step (or hung, or feeding corrupt bytes into the all-reduce) is
  recovered — quiesce → respawn → digest-verified state donation → step
  replay — and the run's losses and final parameters are *bitwise* equal to
  an uninterrupted run at the same seed.  ``max_restarts`` exhaustion
  degrades to :class:`DistributedError` with the restart history attached.
* **Tenant state survives the process.**  `TenantStateStore` round-trips are
  bit-exact; torn/corrupt checkpoint files are detected by SHA-256, never
  loaded, quarantined aside; a restarted `FineTuningService` rehydrates
  every surviving tenant with digests equal to pre-crash state.
* **Cleanup is unconditional.**  ``SharedSegment.close/unlink`` and
  ``StepCapture.retire`` are idempotent and safe from any failure point,
  including on instances whose construction never ran.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.models import ModelConfig, build_model
from repro.peft import apply_lora
from repro.runtime import (DataParallelTrainer, DistributedError, FineTuner,
                           TrainingConfig)
from repro.runtime.arena import StepCapture
from repro.runtime.comms import DistributedError as CommsError
from repro.runtime.comms import SharedSegment
from repro.runtime.fault import (FAULT_SITES, FaultInjector, FaultRule,
                                 InjectedFault, RetryPolicy)
from repro.serve import (CheckpointCorruptError, FineTuningService,
                         ServiceConfig, TenantStateStore)

pytestmark = pytest.mark.fault

NANO = ModelConfig(name="fault-nano", family="gpt2", vocab_size=64,
                   max_seq_len=64, dim=16, num_layers=1, num_heads=2,
                   activation="gelu", sparsify_init=False)


def _nano_tuner():
    model = build_model(NANO, seed=0)
    apply_lora(model)
    return FineTuner(model, TrainingConfig())


def _batches(count=5, rows=4, seq=16, seed=3):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 64, size=(rows, seq)).astype(np.int64)
            for _ in range(count)]


def _shm_entries(needle):
    try:
        return [n for n in os.listdir("/dev/shm") if needle in n]
    except FileNotFoundError:
        return []


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted 2-worker reference run (losses + param digest)."""
    trainer = DataParallelTrainer(_nano_tuner, workers=2, step_timeout_s=60.0)
    try:
        report = trainer.train(_batches())
    finally:
        trainer.close()
    return report


# ---------------------------------------------------------------------------
# fault primitives
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_delay_schedule_is_deterministic_and_bounded(self):
        a = RetryPolicy(max_retries=5, base_delay_s=0.01, max_delay_s=0.05,
                        backoff=2.0, jitter=0.25, seed=7)
        b = RetryPolicy(max_retries=5, base_delay_s=0.01, max_delay_s=0.05,
                        backoff=2.0, jitter=0.25, seed=7)
        assert a.delays() == b.delays()
        assert len(a.delays()) == 5
        for delay in a.delays():
            assert 0.0 < delay <= 0.05 * 1.25
        assert a.delays() != RetryPolicy(max_retries=5, seed=8).delays()

    def test_call_retries_then_succeeds(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        slept = []
        result = RetryPolicy(max_retries=3).call(flaky, retry_on=(OSError,),
                                                 sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert len(slept) == 2

    def test_call_reraises_after_budget(self):
        def always():
            raise OSError("permanent")

        with pytest.raises(OSError, match="permanent"):
            RetryPolicy(max_retries=2).call(always, retry_on=(OSError,),
                                            sleep=lambda _s: None)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)


class TestFaultInjector:
    def test_occurrence_and_hits(self):
        inj = FaultInjector(rules=[FaultRule(site="barrier_timeout", rank=1,
                                             occurrence=2, hits=1)])
        assert not inj.should_fire("barrier_timeout", 1)   # visit 1
        assert inj.should_fire("barrier_timeout", 1)       # visit 2: fires
        assert not inj.should_fire("barrier_timeout", 1)   # hits exhausted
        assert inj.fired_events == [("barrier_timeout", 1, 2)]

    def test_rank_filter(self):
        inj = FaultInjector(rules=[FaultRule(
            site="worker_crash_before_barrier", rank=0, occurrence=1)])
        assert not inj.should_fire("worker_crash_before_barrier", 1)
        assert inj.should_fire("worker_crash_before_barrier", 0)

    def test_probability_is_seed_deterministic(self):
        def fires(seed):
            inj = FaultInjector(seed=seed, rules=[FaultRule(
                site="checkpoint_write_failure", occurrence=None, hits=100,
                probability=0.5)])
            return [inj.should_fire("checkpoint_write_failure")
                    for _ in range(32)]

        assert fires(3) == fires(3)
        assert any(fires(3)) and not all(fires(3))

    def test_maybe_raise_and_validation(self):
        inj = FaultInjector(rules=[FaultRule(site="checkpoint_write_failure")])
        with pytest.raises(InjectedFault):
            inj.maybe_raise("checkpoint_write_failure")
        inj.maybe_raise("checkpoint_write_failure")  # exhausted: no raise
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule(site="meteor_strike")
        assert set(FAULT_SITES) >= {"worker_crash_before_barrier",
                                    "shm_chunk_corruption",
                                    "checkpoint_write_failure"}


# ---------------------------------------------------------------------------
# idempotent cleanup primitives
# ---------------------------------------------------------------------------

class TestSharedSegmentLifecycle:
    def test_double_close_and_unlink_are_noops(self):
        seg = SharedSegment.create(f"fault-seg-{os.getpid()}", 4096)
        name = seg.name
        seg.close()
        seg.close()
        seg.unlink()
        seg.unlink()
        assert _shm_entries(name) == []

    def test_unlink_after_close_still_removes_the_name(self):
        seg = SharedSegment.create(f"fault-seg2-{os.getpid()}", 4096)
        name = seg.name
        assert _shm_entries(name)
        seg.close()
        assert seg.closed
        seg.unlink()                      # re-attaches by name internally
        assert _shm_entries(name) == []

    def test_buf_raises_after_close(self):
        seg = SharedSegment.create(f"fault-seg3-{os.getpid()}", 4096)
        try:
            assert len(seg.buf) == 4096
        finally:
            seg.close()
            seg.unlink()
        with pytest.raises(CommsError, match="closed"):
            seg.buf

    def test_safe_on_unconstructed_instance(self):
        ghost = object.__new__(SharedSegment)
        ghost.close()                     # must not raise
        ghost.unlink()
        assert ghost.closed


class TestStepCaptureRetire:
    def test_double_retire(self):
        capture = StepCapture(warmup_steps=0)
        capture.retire()
        capture.retire()
        assert capture.plan is None and capture.forward_plan is None

    def test_retire_on_unconstructed_instance(self):
        ghost = object.__new__(StepCapture)
        ghost.retire()                    # must not raise
        ghost.retire()
        assert ghost.plan is None


# ---------------------------------------------------------------------------
# elastic recovery (bitwise contract)
# ---------------------------------------------------------------------------

def _faulted_run(injector, **kwargs):
    trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                  fault_injector=injector, **kwargs)
    try:
        report = trainer.train(_batches())
    finally:
        trainer.close()
    assert _shm_entries(trainer.session) == []
    return report


class TestElasticRecovery:
    def test_crash_before_barrier_is_bitwise_recovered(self, baseline):
        report = _faulted_run(
            FaultInjector(rules=[FaultRule(
                site="worker_crash_before_barrier", rank=1, occurrence=2)]),
            step_timeout_s=4.0)
        assert report.worker_restarts == 1
        assert report.losses == baseline.losses
        assert report.param_digest == baseline.param_digest
        assert [e["victims"] for e in report.recovery_events] == [[1]]

    def test_crash_after_barrier_rolls_back_survivor_updates(self, baseline):
        # Survivors completed their optimizer update before discovering the
        # death; the snapshot rollback must undo it or the replay double-
        # applies the step.
        report = _faulted_run(
            FaultInjector(rules=[FaultRule(
                site="worker_crash_after_barrier", rank=0, occurrence=3)]),
            step_timeout_s=4.0)
        assert report.worker_restarts == 1
        assert report.losses == baseline.losses
        assert report.param_digest == baseline.param_digest

    def test_chunk_corruption_detected_and_replayed(self, baseline):
        report = _faulted_run(
            FaultInjector(rules=[FaultRule(
                site="shm_chunk_corruption", rank=1, occurrence=2)]),
            step_timeout_s=4.0)
        # Detection, not propagation: no respawn needed, the step replays.
        assert report.worker_restarts == 0
        assert report.comm_checksum_failures >= 1
        assert report.losses == baseline.losses
        assert report.param_digest == baseline.param_digest

    def test_hung_rank_recovers_like_a_dead_one(self, baseline):
        report = _faulted_run(
            FaultInjector(rules=[FaultRule(
                site="barrier_timeout", rank=1, occurrence=2)]),
            step_timeout_s=3.0)
        assert report.losses == baseline.losses
        assert report.param_digest == baseline.param_digest

    def test_external_sigkill_mid_step_is_bitwise_recovered(self, baseline):
        # The acceptance scenario: a real SIGKILL from outside, landing in
        # the middle of a slowed step.
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=4.0,
                                      _test_step_delay_s=0.5)
        try:
            batches = _batches()
            losses = [trainer.step(batches[0])[0]]   # boot + step 1
            victim = trainer.worker_pids()[1]
            timer = threading.Timer(0.2, os.kill,
                                    args=(victim, signal.SIGKILL))
            timer.start()
            try:
                for batch in batches[1:]:            # step 2 eats the kill
                    losses.append(trainer.step(batch)[0])
            finally:
                timer.cancel()
            _, digest = trainer.fetch_params()
            restarts = trainer.worker_restarts
        finally:
            trainer.close()
        assert restarts == 1
        assert losses == baseline.losses
        assert digest == baseline.param_digest
        assert _shm_entries(trainer.session) == []

    def test_max_restarts_exhaustion_degrades_with_history(self):
        injector = FaultInjector(rules=[
            FaultRule(site="worker_crash_before_barrier", rank=0,
                      occurrence=1),
            FaultRule(site="worker_crash_before_barrier", rank=1,
                      occurrence=2),
        ])
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=3.0, max_restarts=1,
                                      fault_injector=injector)
        try:
            with pytest.raises(DistributedError) as excinfo:
                trainer.train(_batches())
        finally:
            trainer.close()
        message = str(excinfo.value)
        assert "max_restarts" in message
        assert "restart history" in message
        assert _shm_entries(trainer.session) == []

    def test_gauges_land_on_the_trainer_profiler(self):
        trainer = DataParallelTrainer(_nano_tuner, workers=2,
                                      step_timeout_s=30.0)
        try:
            trainer.step(_batches(count=1)[0])
            gauges = trainer.profiler.gauges()
        finally:
            trainer.close()
        assert gauges["worker_restarts"] == 0.0
        assert gauges["comm_checksum_failures"] == 0.0


# ---------------------------------------------------------------------------
# durable tenant store
# ---------------------------------------------------------------------------

class TestTenantStateStore:
    def _slabs(self, seed=0, total=64):
        rng = np.random.default_rng(seed)
        return (rng.standard_normal(total).astype(np.float64),
                rng.standard_normal(total).astype(np.float64),
                rng.standard_normal(total).astype(np.float64))

    def test_round_trip_is_bitwise(self, tmp_path):
        store = TenantStateStore(str(tmp_path))
        params, m, v = self._slabs()
        store.save("tenant/alpha:1", 17, params, m, v)
        step, p2, m2, v2 = store.load("tenant/alpha:1")
        assert step == 17
        assert p2.tobytes() == params.tobytes()
        assert m2.tobytes() == m.tobytes()
        assert v2.tobytes() == v.tobytes()
        assert store.writes == 1 and store.restores == 1

    def test_overwrite_keeps_latest(self, tmp_path):
        store = TenantStateStore(str(tmp_path))
        params, m, v = self._slabs(seed=1)
        store.save("a", 1, params, m, v)
        params2, m2, v2 = self._slabs(seed=2)
        store.save("a", 2, params2, m2, v2)
        step, p, _, _ = store.load("a")
        assert step == 2 and p.tobytes() == params2.tobytes()

    def test_torn_file_is_quarantined(self, tmp_path):
        store = TenantStateStore(str(tmp_path))
        store.save("a", 1, *self._slabs())
        path = store.path("a")
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:len(raw) // 2])      # torn write
        with pytest.raises(CheckpointCorruptError, match="torn|quarantined"):
            store.load("a")
        assert not os.path.exists(path)
        assert store.quarantined_files() == ["a.ckpt.corrupt"]

    def test_bit_rot_is_quarantined(self, tmp_path):
        store = TenantStateStore(str(tmp_path))
        store.save("a", 1, *self._slabs())
        path = store.path("a")
        raw = bytearray(open(path, "rb").read())
        raw[-1] ^= 0xFF                                   # flip one byte
        open(path, "wb").write(bytes(raw))
        with pytest.raises(CheckpointCorruptError, match="SHA-256"):
            store.load("a")
        assert store.quarantined == 1

    def test_scan_skips_corrupt_and_returns_survivors(self, tmp_path):
        store = TenantStateStore(str(tmp_path))
        store.save("good", 5, *self._slabs(seed=3))
        store.save("bad", 9, *self._slabs(seed=4))
        open(store.path("bad"), "wb").write(b"not a checkpoint")
        assert store.scan() == {"good": 5}
        assert store.quarantined_files() == ["bad.ckpt.corrupt"]

    def test_injected_write_failure_is_retried(self, tmp_path):
        injector = FaultInjector(rules=[FaultRule(
            site="checkpoint_write_failure", occurrence=None, hits=2)])
        store = TenantStateStore(
            str(tmp_path),
            retry=RetryPolicy(max_retries=3, base_delay_s=0.0),
            fault_injector=injector)
        store.save("a", 1, *self._slabs())                # two failures, then ok
        assert len(injector.fired_events) == 2
        assert store.load("a")[0] == 1

    def test_write_failure_past_budget_raises_leaving_no_file(self, tmp_path):
        injector = FaultInjector(rules=[FaultRule(
            site="checkpoint_write_failure", occurrence=None, hits=100)])
        store = TenantStateStore(
            str(tmp_path),
            retry=RetryPolicy(max_retries=2, base_delay_s=0.0),
            fault_injector=injector)
        with pytest.raises(InjectedFault):
            store.save("a", 1, *self._slabs())
        assert not store.exists("a")
        assert store.scan() == {}


# ---------------------------------------------------------------------------
# service durability + lane guard
# ---------------------------------------------------------------------------

def _traffic(service, tenants, steps=2, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        for tenant in tenants:
            service.submit(tenant,
                           rng.integers(0, 64, size=(2, 16)).astype(np.int64))
    service.flush()


class TestServiceDurability:
    CFG = dict(max_resident_tenants=2, seq_buckets=(16,))
    TENANTS = ("alice", "bob", "carol")

    def test_restart_rehydrates_bit_exact(self, tmp_path):
        cfg = ServiceConfig(state_dir=str(tmp_path), **self.CFG)
        service = FineTuningService(cfg)
        _traffic(service, self.TENANTS)
        digests = {t: service.tenant_digest(t) for t in self.TENANTS}
        steps = {t: service.fetch_adapter(t).step_count for t in self.TENANTS}
        written = service.checkpoint()
        assert written >= 1

        reborn = FineTuningService(ServiceConfig(state_dir=str(tmp_path),
                                                 **self.CFG))
        assert {t: reborn.tenant_digest(t) for t in self.TENANTS} == digests
        assert {t: reborn.fetch_adapter(t).step_count
                for t in self.TENANTS} == steps
        # Rehydrated tenants keep training from where they stopped.
        _traffic(reborn, ("alice",), steps=1, seed=9)
        assert reborn.fetch_adapter("alice").step_count == steps["alice"] + 1

    def test_corrupt_checkpoint_is_quarantined_service_starts(self, tmp_path):
        cfg = ServiceConfig(state_dir=str(tmp_path), **self.CFG)
        service = FineTuningService(cfg)
        _traffic(service, self.TENANTS)
        digests = {t: service.tenant_digest(t) for t in self.TENANTS}
        service.checkpoint()
        victim = os.path.join(str(tmp_path), "lora", "alice.ckpt")
        raw = open(victim, "rb").read()
        open(victim, "wb").write(raw[:-9] + b"CORRUPTED")

        reborn = FineTuningService(ServiceConfig(state_dir=str(tmp_path),
                                                 **self.CFG))
        registry = reborn._lanes["lora"].registry
        assert registry.tenants() == ["bob", "carol"]     # alice quarantined
        assert registry.store.quarantined_files() == ["alice.ckpt.corrupt"]
        assert reborn.tenant_digest("bob") == digests["bob"]
        assert reborn.gauges()["tenant_quarantined"] == 1.0

    def test_checkpoint_without_state_dir_raises(self):
        service = FineTuningService(ServiceConfig(seq_buckets=(16,)))
        with pytest.raises(RuntimeError, match="state_dir"):
            service.checkpoint()

    def test_durability_gauges_reach_profiler_summary(self, tmp_path):
        cfg = ServiceConfig(state_dir=str(tmp_path), **self.CFG)
        service = FineTuningService(cfg)
        _traffic(service, self.TENANTS, steps=1)
        service.checkpoint()
        summary = service.profiler.summary_dict()
        gauges = summary["gauges"]
        for name in ("tenant_checkpoint_writes", "tenant_restores",
                     "tenant_quarantined"):
            assert name in gauges
        assert gauges["tenant_checkpoint_writes"] >= 3.0


class TestFullLaneGuard:
    def test_oversized_full_lane_is_rejected(self):
        with pytest.raises(ValueError, match="anti-goal"):
            FineTuningService(ServiceConfig(model="opt-small",
                                            adapters=("full",)))

    def test_tiny_full_lane_fits_the_budget(self):
        service = FineTuningService(ServiceConfig(adapters=("full",),
                                                  seq_buckets=(16,)))
        _traffic(service, ("solo",), steps=1)
        assert service.fetch_adapter("solo").step_count == 1

    def test_guard_can_be_disabled(self):
        config = ServiceConfig(model="opt-small", adapters=("full",),
                               max_lane_trainable_bytes=None,
                               seq_buckets=(16,))
        assert FineTuningService(config).base_digest()
