"""Correctness tests for the fused kernels, the tightened backward engine and
the sparse geometry cache.

Three layers of defence:

* **gradcheck** — every fused op's hand-derived backward is compared against
  central finite differences of its own forward (max relative error, taken
  against the gradient's infinity norm, must be <= 1e-3);
* **fused vs. reference** — the fused backward must agree with the autograd
  gradient of the primitive-composition form in
  :mod:`repro.tensor.reference` to much tighter tolerance;
* **cache identity** — block-sparse attention must produce *bitwise*
  identical outputs and gradients with and without the geometry cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.attention import causal_mask
from repro.sparsity.engine import EngineStats
from repro.sparsity.ops import LayoutGeometryCache, block_sparse_attention
from repro.sparsity.ops.layout import LayoutPool, layout_from_block_masks
from repro.sparsity.patterns import build_default_pool
from repro.tensor import Tensor, fused, reference
from repro.tensor.tensor import concatenate

RNG = np.random.default_rng(42)


# ---------------------------------------------------------------------------
# gradcheck machinery
# ---------------------------------------------------------------------------

def _loss_fn(op, arrays, projection):
    """Scalar loss sum(op(*arrays) * projection) evaluated in float64."""
    out = op(*[Tensor(a) for a in arrays])
    out = out[0] if isinstance(out, tuple) else out
    return float(np.sum(out.data.astype(np.float64) * projection))


def _analytic_grads(op, arrays, projection):
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = op(*tensors)
    out = out[0] if isinstance(out, tuple) else out
    loss = (out * Tensor(projection.astype(np.float32))).sum()
    loss.backward()
    return [t.grad for t in tensors]


def _fd_grad(op, arrays, index, projection, h=1e-2):
    """Central finite differences w.r.t. ``arrays[index]``."""
    base = arrays[index]
    grad = np.zeros_like(base, dtype=np.float64)
    flat = base.reshape(-1)
    for i in range(flat.shape[0]):
        original = flat[i]
        flat[i] = original + h
        plus = _loss_fn(op, arrays, projection)
        flat[i] = original - h
        minus = _loss_fn(op, arrays, projection)
        flat[i] = original
        grad.reshape(-1)[i] = (plus - minus) / (2 * h)
    return grad


def _max_rel_err(analytic, fd):
    scale = np.max(np.abs(fd)) + 1e-12
    return float(np.max(np.abs(analytic.astype(np.float64) - fd)) / scale)


def _gradcheck(fused_op, reference_op, arrays, tol_fd=1e-3, tol_ref=5e-5,
               scalar_output=False):
    """Assert fused backward ~ finite differences and ~ reference autograd."""
    if scalar_output:
        projection = np.ones(1, dtype=np.float64)
    else:
        probe = fused_op(*[Tensor(a) for a in arrays])
        probe = probe[0] if isinstance(probe, tuple) else probe
        projection = RNG.normal(size=probe.shape).astype(np.float32).astype(np.float64)

    fused_grads = _analytic_grads(fused_op, arrays, projection)
    ref_grads = _analytic_grads(reference_op, arrays, projection)
    for index, (fg, rg) in enumerate(zip(fused_grads, ref_grads)):
        assert fg is not None and rg is not None
        assert _max_rel_err(fg, rg.astype(np.float64)) <= tol_ref, \
            f"fused vs reference mismatch for input {index}"
        fd = _fd_grad(fused_op, arrays, index, projection)
        assert _max_rel_err(fg, fd) <= tol_fd, \
            f"fused vs finite differences mismatch for input {index}"


class TestFusedGradchecks:
    def test_softmax(self):
        x = RNG.normal(size=(3, 5)).astype(np.float32)
        _gradcheck(lambda t: fused.softmax(t), lambda t: reference.softmax(t), [x])

    def test_log_softmax(self):
        x = RNG.normal(size=(3, 5)).astype(np.float32)
        _gradcheck(lambda t: fused.log_softmax(t),
                   lambda t: reference.log_softmax(t), [x])

    def test_masked_softmax(self):
        x = RNG.normal(size=(2, 6, 6)).astype(np.float32)
        mask = causal_mask(6)
        _gradcheck(lambda t: fused.masked_softmax(t, mask),
                   lambda t: reference.masked_softmax(t, mask), [x])

    def test_layer_norm(self):
        x = RNG.normal(size=(2, 3, 8)).astype(np.float32)
        w = (1.0 + 0.1 * RNG.normal(size=8)).astype(np.float32)
        b = (0.1 * RNG.normal(size=8)).astype(np.float32)
        _gradcheck(lambda xx, ww, bb: fused.layer_norm(xx, ww, bb),
                   lambda xx, ww, bb: reference.layer_norm(xx, ww, bb),
                   [x, w, b], tol_ref=2e-4)

    @pytest.mark.parametrize("activation", [None, "relu", "gelu", "tanh", "sigmoid"])
    def test_linear(self, activation):
        # Seed chosen so every pre-activation is >= 0.16 away from zero —
        # central differences straddle the ReLU kink otherwise.
        rng = np.random.default_rng(38)
        x = rng.normal(size=(2, 3, 4)).astype(np.float32)
        w = rng.normal(0, 0.5, size=(5, 4)).astype(np.float32)
        b = (0.1 * rng.normal(size=5)).astype(np.float32)
        _gradcheck(lambda xx, ww, bb: fused.linear(xx, ww, bb, activation=activation),
                   lambda xx, ww, bb: reference.linear(xx, ww, bb, activation=activation),
                   [x, w, b], tol_ref=1e-4)

    def test_cross_entropy(self):
        logits = RNG.normal(size=(2, 4, 7)).astype(np.float32)
        targets = RNG.integers(0, 7, size=(2, 4))
        targets[0, 1] = -100  # exercise ignore_index
        _gradcheck(lambda t: fused.cross_entropy_logits(t, targets)[0],
                   lambda t: reference.cross_entropy_logits(t, targets)[0],
                   [logits], scalar_output=True)

    def test_cross_entropy_shifted(self):
        logits = RNG.normal(size=(2, 5, 6)).astype(np.float32)
        targets = RNG.integers(0, 6, size=(2, 5))
        _gradcheck(lambda t: fused.cross_entropy_logits(t, targets, shift=True)[0],
                   lambda t: reference.cross_entropy_logits(t, targets, shift=True)[0],
                   [logits], scalar_output=True)

    def test_scaled_dot_product_attention(self):
        q = RNG.normal(size=(2, 2, 4, 3)).astype(np.float32)
        k = RNG.normal(size=(2, 2, 4, 3)).astype(np.float32)
        v = RNG.normal(size=(2, 2, 4, 3)).astype(np.float32)
        mask = causal_mask(4)
        _gradcheck(lambda a, bq, c: fused.scaled_dot_product_attention(a, bq, c, mask),
                   lambda a, bq, c: reference.scaled_dot_product_attention(a, bq, c, mask),
                   [q, k, v], tol_ref=2e-4)

    def test_sdpa_return_probs_rows_sum_to_one(self):
        q = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        k = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        v = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        out, probs = fused.scaled_dot_product_attention(
            q, k, v, causal_mask(5), return_probs=True)
        assert out.shape == (1, 2, 5, 4)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
        assert np.all(probs[..., ~causal_mask(5)] == 0.0)


class TestKernelSwitch:
    def test_reference_kernels_context_restores(self):
        assert fused.fused_kernels_enabled()
        with fused.reference_kernels():
            assert not fused.fused_kernels_enabled()
        assert fused.fused_kernels_enabled()

    def test_model_loss_matches_between_modes(self):
        from repro.models import build_model
        ids = np.random.default_rng(3).integers(0, 512, size=(2, 32))
        model = build_model("gpt2-tiny", seed=0)
        loss_fused, n_fused = model.loss(ids)
        with fused.reference_kernels():
            loss_ref, n_ref = model.loss(ids)
        assert n_fused == n_ref
        np.testing.assert_allclose(loss_fused.data, loss_ref.data, rtol=2e-4)


# ---------------------------------------------------------------------------
# backward engine: single accumulation path
# ---------------------------------------------------------------------------

class TestBackwardAccumulation:
    def test_diamond_graph_shared_leaf(self):
        # y = (2x + 3x) * 2x = 10 x**2  ->  dy/dx = 20 x, with x feeding the
        # product through two interior paths plus a reused intermediate.
        x = Tensor(np.array([1.5, -2.0, 3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        y = (a + x * 3.0) * a
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 20.0 * x.data, rtol=1e-6)

    def test_leaf_used_twice_in_one_op(self):
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * x.data)

    def test_add_aliased_gradient_not_corrupted(self):
        # __add__ hands the *same* gradient array to both parents; the
        # accumulation path must not mutate one parent's copy in place while
        # the other still references it.
        x = Tensor(np.array([1.0, -1.0], dtype=np.float32), requires_grad=True)
        y = Tensor(np.array([2.0, 0.5], dtype=np.float32), requires_grad=True)
        s = x + y
        (s * s).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * (x.data + y.data))
        np.testing.assert_allclose(y.grad, 2.0 * (x.data + y.data))

    def test_concatenate_diamond(self):
        x = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        c = concatenate([x * 2.0, x * 3.0], axis=0)
        c.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 5.0))

    def test_grad_accumulates_across_fresh_graphs(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 4.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 6.0))

    def test_retain_graph_allows_second_backward(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = (x * x).sum()
        y.backward(retain_graph=True)
        y.backward(retain_graph=True)
        np.testing.assert_allclose(x.grad, np.array([8.0]))

    def test_graph_is_freed_after_backward(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x * 2.0
        z = y.sum()
        z.backward()
        assert z._parents == () and y._parents == ()
        assert z._backward is not None  # freed sentinel, not a leaf marker

    def test_second_backward_on_freed_graph_raises(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        z = (x * 2.0).sum()
        z.backward()
        with pytest.raises(RuntimeError, match="retain_graph"):
            z.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 2.0))  # untouched

    def test_backward_accepts_tensor_seed(self):
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        y = x * 3.0
        y.backward(Tensor(np.array([1.0, 0.5], dtype=np.float32)))
        np.testing.assert_allclose(x.grad, np.array([3.0, 1.5]))

    def test_deep_chain_matches_closed_form(self):
        x = Tensor(np.array([0.5], dtype=np.float32), requires_grad=True)
        out = x
        for _ in range(50):
            out = out * 1.1
        out.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.array([1.1 ** 50]), rtol=1e-5)


# ---------------------------------------------------------------------------
# cached causal mask
# ---------------------------------------------------------------------------

class TestCausalMaskCache:
    def test_same_object_returned(self):
        assert causal_mask(16) is causal_mask(16)

    def test_read_only(self):
        mask = causal_mask(16)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_values(self):
        np.testing.assert_array_equal(causal_mask(4),
                                      np.tril(np.ones((4, 4), dtype=bool)))


# ---------------------------------------------------------------------------
# sparse geometry cache
# ---------------------------------------------------------------------------

def _random_layout(seed=0, heads=3, n_blocks=4, block_size=8):
    rng = np.random.default_rng(seed)
    masks = rng.random((heads, n_blocks, n_blocks)) < 0.5
    return layout_from_block_masks(masks, block_size)


class TestLayoutGeometryCache:
    def test_outputs_bitwise_identical_with_and_without_cache(self):
        layout = _random_layout()
        seq_len = 30  # deliberately not a block multiple
        rng = np.random.default_rng(1)
        shape = (2, layout.n_heads, seq_len, 5)
        q = rng.normal(size=shape).astype(np.float32)
        k = rng.normal(size=shape).astype(np.float32)
        v = rng.normal(size=shape).astype(np.float32)

        def run(cache):
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out = block_sparse_attention(qt, kt, vt, layout, cache=cache)
            out.sum().backward()
            return out.data, qt.grad, kt.grad, vt.grad

        cache = LayoutGeometryCache()
        plain = run(None)
        cached_cold = run(cache)
        cached_warm = run(cache)
        assert cache.hits >= 1 and cache.misses == 1
        for a, b, c in zip(plain, cached_cold, cached_warm):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_content_keying_shares_across_layout_objects(self):
        cache = LayoutGeometryCache()
        a = _random_layout(seed=7)
        b = _random_layout(seed=7)   # distinct object, identical contents
        assert a is not b
        assert a.signature() == b.signature()
        cache.lookup(a, 32)
        entry = cache.lookup(b, 32)
        assert cache.misses == 1 and cache.hits == 1
        assert entry is cache.lookup(a, 32)

    def test_seq_len_is_part_of_the_key(self):
        cache = LayoutGeometryCache()
        layout = _random_layout(seed=3)
        g1 = cache.lookup(layout, 30)
        g2 = cache.lookup(layout, 32)
        assert cache.misses == 2
        assert g1.element_mask.sum() != g2.element_mask.sum()

    def test_lru_bound(self):
        cache = LayoutGeometryCache(maxsize=2)
        for seed in range(5):
            cache.lookup(_random_layout(seed=seed), 32)
        assert len(cache) == 2

    def test_engine_backend_threads_cache(self, tiny_batches):
        from repro.models import build_model
        from repro.sparsity import LongExposure, LongExposureConfig
        model = build_model("opt-tiny", seed=0)
        config = LongExposureConfig(block_size=16, oracle_mode=True, seed=0)
        engine = LongExposure(config)
        engine.prepare(model, tiny_batches)
        engine.install(model)
        try:
            ids = tiny_batches[0]
            model.loss(ids)
            model.loss(ids)
        finally:
            engine.uninstall(model)
        assert engine.geometry_cache.hits > 0


class TestLayoutPoolLRU:
    def test_combine_cache_bounded_and_hit_counted(self):
        pool = LayoutPool(build_default_pool(), block_size=16,
                          combined_cache_size=2)
        pool.combine(["dense", "local2"], 64)
        pool.combine(["dense", "local2"], 64)
        assert pool.combine_hits == 1
        pool.combine(["local2", "dense"], 64)
        pool.combine(["local4", "dense"], 64)
        assert len(pool._combined_cache) == 2
        # Evicted entry is rebuilt, not corrupted.
        layout = pool.combine(["dense", "local2"], 64)
        assert layout.pattern_names == ("dense", "local2")


# ---------------------------------------------------------------------------
# bounded engine stats
# ---------------------------------------------------------------------------

class TestEngineStats:
    def test_running_mean_matches_numpy(self):
        stats = EngineStats()
        values = np.random.default_rng(0).random(1000)
        for value in values:
            stats.record_attention_sparsity(value)
            stats.record_mlp_sparsity(value / 2)
        assert stats.attention_sparsity_samples == 1000
        np.testing.assert_allclose(stats.mean_attention_sparsity(),
                                   values.mean(), rtol=1e-9)
        np.testing.assert_allclose(stats.mean_mlp_sparsity(),
                                   values.mean() / 2, rtol=1e-9)

    def test_constant_memory(self):
        stats = EngineStats()
        for _ in range(10):
            stats.record_attention_sparsity(0.5)
        # No per-call containers: every field is a scalar.
        assert all(isinstance(v, (int, float)) for v in vars(stats).values())

    def test_reset(self):
        stats = EngineStats()
        stats.record_attention_sparsity(0.7)
        stats.reset()
        assert stats.mean_attention_sparsity() == 0.0
        assert stats.attention_sparsity_samples == 0
