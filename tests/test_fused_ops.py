"""Correctness tests for the fused kernels, the tightened backward engine and
the sparse geometry cache.

The per-op gradchecks live in the shared parity harness (:mod:`parity`):
every fused op — including the block-sparse attention chain — is exercised
across a grid of shapes, dtypes and odd/ragged sequence lengths, under both
states of the fused-kernel toggle, against central finite differences (max
rel err <= 1e-3) and the primitive-composition references.  This file drives
that grid and keeps the checks the harness does not parametrise: the kernel
switch plumbing, overflow safety at extreme score magnitudes, the backward
engine's accumulation semantics, and the cache-identity guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest

import parity
from repro.nn.attention import causal_mask
from repro.sparsity.engine import EngineStats
from repro.sparsity.ops import LayoutGeometryCache, block_sparse_attention
from repro.sparsity.ops.block_sparse import dense_attention_reference
from repro.sparsity.ops.layout import LayoutPool, layout_from_block_masks
from repro.sparsity.patterns import build_default_pool
from repro.tensor import Tensor, fused, reference
from repro.tensor.tensor import concatenate

RNG = np.random.default_rng(42)


# ---------------------------------------------------------------------------
# fused-vs-reference parity grid (shared harness in tests/parity.py)
# ---------------------------------------------------------------------------

@pytest.mark.parity
@pytest.mark.parametrize("fused_enabled", [True, False],
                         ids=["fused-on", "fused-off"])
@pytest.mark.parametrize("case", parity.ALL_CASES, ids=str)
def test_parity(case, fused_enabled):
    parity.run_case(case, fused_enabled=fused_enabled)


class TestSdpaReturnProbs:
    def test_rows_sum_to_one(self):
        q = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        k = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        v = Tensor(RNG.normal(size=(1, 2, 5, 4)).astype(np.float32))
        out, probs = fused.scaled_dot_product_attention(
            q, k, v, causal_mask(5), return_probs=True)
        assert out.shape == (1, 2, 5, 4)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-5)
        assert np.all(probs[..., ~causal_mask(5)] == 0.0)


class TestOverflowSafety:
    """Softmax chains must survive extreme score magnitudes (|x| ~ 1e4)."""

    def test_dense_attention_reference_subtracts_row_max(self):
        rng = np.random.default_rng(0)
        q, k, v = [rng.normal(size=(1, 2, 8, 4)).astype(np.float32) * 100.0
                   for _ in range(3)]
        out = dense_attention_reference(q, k, v, mask=causal_mask(8))
        assert np.all(np.isfinite(out))
        # Matches the fused kernel on the same extreme inputs.
        fused_out = fused.scaled_dot_product_attention(
            Tensor(q), Tensor(k), Tensor(v), causal_mask(8))
        np.testing.assert_allclose(out, fused_out.data, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("magnitude", [1e3, 1e4])
    def test_masked_softmax_extreme_scores(self, magnitude):
        rng = np.random.default_rng(1)
        scores = (rng.normal(size=(2, 6, 6)) * magnitude).astype(np.float32)
        mask = causal_mask(6)
        out = fused.masked_softmax(Tensor(scores), mask)
        ref = reference.masked_softmax(Tensor(scores), mask)
        assert np.all(np.isfinite(out.data)) and np.all(np.isfinite(ref.data))
        np.testing.assert_allclose(out.data, ref.data, atol=1e-6)

    def test_sparse_chain_extreme_scores(self):
        layout = parity._random_layout(5, heads=2, n_blocks=2, block_size=8)
        rng = np.random.default_rng(2)
        q, k, v = [(rng.normal(size=(1, 2, 16, 4)) * 100.0).astype(np.float32)
                   for _ in range(3)]
        out = block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout)
        ref = reference.block_sparse_attention(Tensor(q), Tensor(k), Tensor(v),
                                               layout)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, ref.data, rtol=1e-4, atol=1e-4)


class TestKernelSwitch:
    def test_reference_kernels_context_restores(self):
        assert fused.fused_kernels_enabled()
        with fused.reference_kernels():
            assert not fused.fused_kernels_enabled()
        assert fused.fused_kernels_enabled()

    def test_model_loss_matches_between_modes(self):
        from repro.models import build_model
        ids = np.random.default_rng(3).integers(0, 512, size=(2, 32))
        model = build_model("gpt2-tiny", seed=0)
        loss_fused, n_fused = model.loss(ids)
        with fused.reference_kernels():
            loss_ref, n_ref = model.loss(ids)
        assert n_fused == n_ref
        np.testing.assert_allclose(loss_fused.data, loss_ref.data, rtol=2e-4)

    def test_sparse_chain_routes_through_toggle(self):
        """With fused kernels off, the sparse entry point runs the taped twin
        (observable through the much deeper graph it builds)."""
        layout = parity._random_layout(3, heads=2, n_blocks=2, block_size=8)
        rng = np.random.default_rng(4)
        q, k, v = [Tensor(rng.normal(size=(1, 2, 16, 3)).astype(np.float32),
                          requires_grad=True) for _ in range(3)]
        fused_out = block_sparse_attention(q, k, v, layout)
        assert len(fused_out._parents) == 3      # single fused node
        with fused.reference_kernels():
            taped_out = block_sparse_attention(q, k, v, layout)
        assert len(taped_out._parents) == 2      # tail matmul of the taped twin
        np.testing.assert_allclose(fused_out.data, taped_out.data,
                                   rtol=1e-4, atol=1e-5)


# ---------------------------------------------------------------------------
# backward engine: single accumulation path
# ---------------------------------------------------------------------------

class TestBackwardAccumulation:
    def test_diamond_graph_shared_leaf(self):
        # y = (2x + 3x) * 2x = 10 x**2  ->  dy/dx = 20 x, with x feeding the
        # product through two interior paths plus a reused intermediate.
        x = Tensor(np.array([1.5, -2.0, 3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        y = (a + x * 3.0) * a
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 20.0 * x.data, rtol=1e-6)

    def test_leaf_used_twice_in_one_op(self):
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * x.data)

    def test_add_aliased_gradient_not_corrupted(self):
        # __add__ hands the *same* gradient array to both parents; the
        # accumulation path must not mutate one parent's copy in place while
        # the other still references it.
        x = Tensor(np.array([1.0, -1.0], dtype=np.float32), requires_grad=True)
        y = Tensor(np.array([2.0, 0.5], dtype=np.float32), requires_grad=True)
        s = x + y
        (s * s).sum().backward()
        np.testing.assert_allclose(x.grad, 2.0 * (x.data + y.data))
        np.testing.assert_allclose(y.grad, 2.0 * (x.data + y.data))

    def test_concatenate_diamond(self):
        x = Tensor(np.arange(4, dtype=np.float32), requires_grad=True)
        c = concatenate([x * 2.0, x * 3.0], axis=0)
        c.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 5.0))

    def test_grad_accumulates_across_fresh_graphs(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 4.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 6.0))

    def test_retain_graph_allows_second_backward(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = (x * x).sum()
        y.backward(retain_graph=True)
        y.backward(retain_graph=True)
        np.testing.assert_allclose(x.grad, np.array([8.0]))

    def test_graph_is_freed_after_backward(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        y = x * 2.0
        z = y.sum()
        z.backward()
        assert z._parents == () and y._parents == ()
        assert z._backward is not None  # freed sentinel, not a leaf marker

    def test_second_backward_on_freed_graph_raises(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        z = (x * 2.0).sum()
        z.backward()
        with pytest.raises(RuntimeError, match="retain_graph"):
            z.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 2.0))  # untouched

    def test_backward_accepts_tensor_seed(self):
        x = Tensor(np.array([1.0, 2.0], dtype=np.float32), requires_grad=True)
        y = x * 3.0
        y.backward(Tensor(np.array([1.0, 0.5], dtype=np.float32)))
        np.testing.assert_allclose(x.grad, np.array([3.0, 1.5]))

    def test_deep_chain_matches_closed_form(self):
        x = Tensor(np.array([0.5], dtype=np.float32), requires_grad=True)
        out = x
        for _ in range(50):
            out = out * 1.1
        out.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(x.grad, np.array([1.1 ** 50]), rtol=1e-5)


# ---------------------------------------------------------------------------
# cached causal mask
# ---------------------------------------------------------------------------

class TestCausalMaskCache:
    def test_same_object_returned(self):
        assert causal_mask(16) is causal_mask(16)

    def test_read_only(self):
        mask = causal_mask(16)
        assert not mask.flags.writeable
        with pytest.raises(ValueError):
            mask[0, 0] = False

    def test_values(self):
        np.testing.assert_array_equal(causal_mask(4),
                                      np.tril(np.ones((4, 4), dtype=bool)))


# ---------------------------------------------------------------------------
# sparse geometry cache
# ---------------------------------------------------------------------------

def _random_layout(seed=0, heads=3, n_blocks=4, block_size=8):
    return parity._random_layout(seed, heads, n_blocks, block_size)


class TestLayoutGeometryCache:
    def test_outputs_bitwise_identical_with_and_without_cache(self):
        layout = _random_layout()
        seq_len = 30  # deliberately not a block multiple
        rng = np.random.default_rng(1)
        shape = (2, layout.n_heads, seq_len, 5)
        q = rng.normal(size=shape).astype(np.float32)
        k = rng.normal(size=shape).astype(np.float32)
        v = rng.normal(size=shape).astype(np.float32)

        def run(cache):
            qt = Tensor(q, requires_grad=True)
            kt = Tensor(k, requires_grad=True)
            vt = Tensor(v, requires_grad=True)
            out = block_sparse_attention(qt, kt, vt, layout, cache=cache)
            out.sum().backward()
            return out.data, qt.grad, kt.grad, vt.grad

        cache = LayoutGeometryCache()
        plain = run(None)
        cached_cold = run(cache)
        cached_warm = run(cache)
        assert cache.hits >= 1 and cache.misses == 1
        for a, b, c in zip(plain, cached_cold, cached_warm):
            assert np.array_equal(a, b)
            assert np.array_equal(a, c)

    def test_content_keying_shares_across_layout_objects(self):
        cache = LayoutGeometryCache()
        a = _random_layout(seed=7)
        b = _random_layout(seed=7)   # distinct object, identical contents
        assert a is not b
        assert a.signature() == b.signature()
        cache.lookup(a, 32)
        entry = cache.lookup(b, 32)
        assert cache.misses == 1 and cache.hits == 1
        assert entry is cache.lookup(a, 32)

    def test_seq_len_is_part_of_the_key(self):
        cache = LayoutGeometryCache()
        layout = _random_layout(seed=3)
        g1 = cache.lookup(layout, 30)
        g2 = cache.lookup(layout, 32)
        assert cache.misses == 2
        assert g1.element_mask.sum() != g2.element_mask.sum()

    def test_lru_bound(self):
        cache = LayoutGeometryCache(maxsize=2)
        for seed in range(5):
            cache.lookup(_random_layout(seed=seed), 32)
        assert len(cache) == 2

    def test_engine_backend_threads_cache(self, tiny_batches):
        from repro.models import build_model
        from repro.sparsity import LongExposure, LongExposureConfig
        model = build_model("opt-tiny", seed=0)
        config = LongExposureConfig(block_size=16, oracle_mode=True, seed=0)
        engine = LongExposure(config)
        engine.prepare(model, tiny_batches)
        engine.install(model)
        try:
            ids = tiny_batches[0]
            model.loss(ids)
            model.loss(ids)
        finally:
            engine.uninstall(model)
        assert engine.geometry_cache.hits > 0


class TestLayoutPoolLRU:
    def test_combine_cache_bounded_and_hit_counted(self):
        pool = LayoutPool(build_default_pool(), block_size=16,
                          combined_cache_size=2)
        pool.combine(["dense", "local2"], 64)
        pool.combine(["dense", "local2"], 64)
        assert pool.combine_hits == 1
        pool.combine(["local2", "dense"], 64)
        pool.combine(["local4", "dense"], 64)
        assert len(pool._combined_cache) == 2
        # Evicted entry is rebuilt, not corrupted.
        layout = pool.combine(["dense", "local2"], 64)
        assert layout.pattern_names == ("dense", "local2")


# ---------------------------------------------------------------------------
# bounded engine stats
# ---------------------------------------------------------------------------

class TestEngineStats:
    def test_running_mean_matches_numpy(self):
        stats = EngineStats()
        values = np.random.default_rng(0).random(1000)
        for value in values:
            stats.record_attention_sparsity(value)
            stats.record_mlp_sparsity(value / 2)
        assert stats.attention_sparsity_samples == 1000
        np.testing.assert_allclose(stats.mean_attention_sparsity(),
                                   values.mean(), rtol=1e-9)
        np.testing.assert_allclose(stats.mean_mlp_sparsity(),
                                   values.mean() / 2, rtol=1e-9)

    def test_constant_memory(self):
        stats = EngineStats()
        for _ in range(10):
            stats.record_attention_sparsity(0.5)
            stats.attention_layer(0).record_refresh(0.25)
            stats.attention_layer(0).reuses += 1
        # No per-call containers: fields are scalars, or per-layer dicts
        # whose size is bounded by the layer count (not the call count) and
        # whose entries are scalar-only running aggregates.
        assert all(isinstance(v, (int, float, dict)) for v in vars(stats).values())
        assert len(stats.attention_layers) == 1
        layer = stats.attention_layer(0)
        assert all(isinstance(v, (int, float)) for v in vars(layer).values())
        assert layer.refreshes == 10 and layer.reuses == 10
        assert layer.drift_mean == pytest.approx(0.25)

    def test_reset(self):
        stats = EngineStats()
        stats.record_attention_sparsity(0.7)
        stats.attention_layer(1).record_refresh(0.5)
        stats.backend_seconds = 1.0
        stats.reset()
        assert stats.mean_attention_sparsity() == 0.0
        assert stats.attention_sparsity_samples == 0
        assert stats.attention_layers == {}
        assert stats.prediction_fraction() == 0.0
