"""Parity of the optimised probe-inference path against the seed reference.

The probe-optimisation pass rewrote :meth:`AttentionPredictor.predict_patterns`
(stacked single-GEMM Q̂/K̂, in-place sigmoid chain, logit-space thresholds,
vectorised pattern matcher) and :meth:`AttentionExposer.block_reduce`
(two-stage per-axis ``np.add.reduceat`` reduction).  The pre-optimisation
implementations are kept verbatim in ``benchmarks/bench_perf_regression.py``
as the measured baselines; these tests lock that both compute the same thing:

* predicted patterns identical to the einsum + scalar-matcher reference on
  randomised inputs;
* ``match_many`` identical to the per-head scalar ``match`` loop;
* ``block_reduce`` *exactly* equal to the 6-D reshape-sum on inputs where
  float32 summation is associative (probabilities quantised to a dyadic
  grid — every partial sum is exactly representable, so any summation order
  must produce the same bits), and allclose on arbitrary random inputs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.sparsity.exposer import AttentionExposer
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.sparsity.predictor import AttentionPredictor, MLPPredictor

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import bench_perf_regression as bench  # noqa: E402


def _predictor(dim=32, heads=4, rank=4, block_size=16, seed=0, **kw):
    return AttentionPredictor(dim, heads, rank, block_size,
                              build_default_pool(), seed=seed, **kw)


class TestPredictPatternsParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("batch,seq", [(1, 64), (2, 64), (3, 48)])
    def test_matches_pre_pr_reference(self, seed, batch, seq):
        predictor = _predictor(seed=seed)
        rng = np.random.default_rng(100 + seed)
        x = rng.normal(size=(batch, seq, 32)).astype(np.float32)
        assert predictor.predict_patterns(x) == bench.pre_pr_predict_patterns(
            predictor, x)

    def test_2d_input_promoted_to_batch(self):
        predictor = _predictor()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 32)).astype(np.float32)
        assert predictor.predict_patterns(x) == predictor.predict_patterns(x[None])

    def test_block_masks_logit_threshold_matches_sigmoid(self):
        predictor = _predictor(threshold=0.07)
        rng = np.random.default_rng(5)
        x = rng.normal(size=(2, 64, 32)).astype(np.float32)
        scores = predictor.approximate_scores(x)
        probs = 1.0 / (1.0 + np.exp(-scores.astype(np.float64)))
        keep = (probs > 0.5 + predictor.threshold).any(axis=0)
        n_blocks = keep.shape[-1]
        keep &= causal_block_mask(n_blocks)[None]
        keep |= np.eye(n_blocks, dtype=bool)[None]
        np.testing.assert_array_equal(predictor.block_masks(x), keep)

    def test_degenerate_threshold_keeps_only_diagonal(self):
        predictor = _predictor(threshold=0.5)   # sigmoid can never exceed 1.0
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 64, 32)).astype(np.float32)
        masks = predictor.block_masks(x)
        for head_mask in masks:
            np.testing.assert_array_equal(head_mask,
                                          np.eye(masks.shape[-1], dtype=bool))

    def test_downsample_indices_memoized_and_readonly(self):
        predictor = _predictor()
        idx = predictor.downsample_indices(64)
        assert predictor.downsample_indices(64) is idx
        assert not idx.flags.writeable
        np.testing.assert_array_equal(
            idx, np.minimum(np.arange(4) * 16 + 8, 63))

    def test_packed_weights_invalidated_by_training_path(self):
        from repro.tensor import Tensor

        predictor = _predictor()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 64, 32)).astype(np.float32)
        before = predictor.predict_patterns(x)
        assert before == bench.pre_pr_predict_patterns(predictor, x)
        # The training path (forward) precedes every weight update; it must
        # drop the packed memo so inference sees the new weights.
        predictor.forward(Tensor(x))
        predictor.w_q.data[:] = rng.normal(
            0.0, 1.0, size=predictor.w_q.data.shape).astype(np.float32)
        assert predictor.predict_patterns(x) == bench.pre_pr_predict_patterns(
            predictor, x)

    def test_explicit_invalidate_cache(self):
        predictor = _predictor()
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 64, 32)).astype(np.float32)
        predictor.predict_patterns(x)
        predictor.w_k.data[:] = rng.normal(
            0.0, 1.0, size=predictor.w_k.data.shape).astype(np.float32)
        predictor.invalidate_cache()
        assert predictor.predict_patterns(x) == bench.pre_pr_predict_patterns(
            predictor, x)


class TestMatchManyParity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("coverage", [0.5, 0.9, 0.95])
    def test_matches_scalar_loop(self, seed, coverage):
        pool = build_default_pool()
        rng = np.random.default_rng(seed)
        n_blocks = 8
        mass = rng.random((6, n_blocks, n_blocks)) * causal_block_mask(n_blocks)
        assert pool.match_many(mass, coverage=coverage) == [
            pool.match(mass[h], coverage) for h in range(mass.shape[0])]

    def test_zero_mass_head_falls_back_to_cheapest(self):
        pool = build_default_pool()
        mass = np.zeros((2, 8, 8))
        mass[1, 2, 1] = 1.0
        names = pool.match_many(mass, coverage=0.9)
        assert names[0] == pool.match(mass[0], 0.9)   # zero-mass fallback
        assert names == [pool.match(mass[h], 0.9) for h in range(2)]

    def test_rejects_wrong_rank(self):
        pool = build_default_pool()
        with pytest.raises(ValueError):
            pool.match_many(np.zeros((8, 8)))


class TestBlockReduceExactness:
    def _quantised_probs(self, rng, shape):
        """Attention-probability-like values on a 2^-12 dyadic grid.

        Sums of up to 2^12 such values stay exactly representable in
        float32, so *every* summation order produces identical bits — the
        two-stage reduction must therefore match the 6-D reshape-sum
        bit-for-bit, not just approximately.
        """
        probs = rng.random(shape).astype(np.float32)
        return np.round(probs * 4096.0) / np.float32(4096.0)

    @pytest.mark.parametrize("batch,heads,seq,bs", [
        (1, 2, 64, 16), (2, 3, 64, 32), (2, 2, 48, 16),   # 48: ragged grid
        (1, 1, 16, 16),
    ])
    def test_exactly_equals_6d_reshape_sum(self, batch, heads, seq, bs):
        exposer = AttentionExposer(build_default_pool(), bs)
        rng = np.random.default_rng(batch * 100 + seq)
        probs = self._quantised_probs(rng, (batch, heads, seq, seq))
        new = exposer.block_reduce(probs)
        old = bench.pre_pr_block_reduce(exposer, probs)
        assert new.dtype == old.dtype
        np.testing.assert_array_equal(new, old)

    def test_close_on_arbitrary_floats(self):
        exposer = AttentionExposer(build_default_pool(), 16)
        rng = np.random.default_rng(0)
        probs = rng.random((2, 2, 64, 64)).astype(np.float32)
        np.testing.assert_allclose(exposer.block_reduce(probs),
                                   bench.pre_pr_block_reduce(exposer, probs),
                                   rtol=1e-5, atol=1e-5)

    def test_3d_input_promoted(self):
        exposer = AttentionExposer(build_default_pool(), 16)
        rng = np.random.default_rng(1)
        probs = self._quantised_probs(rng, (2, 32, 32))
        np.testing.assert_array_equal(exposer.block_reduce(probs),
                                      exposer.block_reduce(probs[None]))

    def test_causal_blocks_zeroed(self):
        exposer = AttentionExposer(build_default_pool(), 16)
        probs = np.ones((1, 1, 32, 32), dtype=np.float32)
        reduced = exposer.block_reduce(probs)
        assert reduced[0, 0, 1] == 0.0      # above-diagonal block
        assert reduced[0, 1, 0] == 16 * 16  # below-diagonal block


class TestMLPProbeParity:
    def test_block_scores_bitwise_matches_reference(self):
        predictor = MLPPredictor(32, 128, 16, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 64, 32)).astype(np.float32)
        logits = x.reshape(-1, 32) @ predictor.w_a.data + predictor.bias.data
        reference = (1.0 / (1.0 + np.exp(-logits))).mean(axis=0)
        np.testing.assert_array_equal(predictor.block_scores(x), reference)

    def test_predict_active_blocks_unchanged(self):
        predictor = MLPPredictor(32, 128, 16, seed=0)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(2, 64, 32)).astype(np.float32)
        scores = predictor.block_scores(x)
        active = np.nonzero(scores >= predictor.threshold)[0]
        if active.size < predictor.min_active_blocks:
            active = np.sort(np.argsort(scores)[::-1][:predictor.min_active_blocks])
        np.testing.assert_array_equal(predictor.predict_active_blocks(x), active)
