"""Tests of the nn module library and the OPT / GPT-2 model families."""

import numpy as np
import pytest

from repro.models import GPT2Model, OPTModel, build_model, get_config, list_configs
from repro.models.config import PAPER_TO_EXECUTABLE, ModelConfig, register_config
from repro.nn import (
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MLPBlock,
    Module,
    ModuleList,
    MultiHeadAttention,
    Parameter,
    ReLU,
    TransformerBlock,
)
from repro.nn.attention import causal_mask
from repro.tensor import Tensor


class TestModuleSystem:
    def test_parameter_discovery_is_recursive(self):
        block = TransformerBlock(dim=16, num_heads=2, hidden_dim=32)
        names = [name for name, _ in block.named_parameters()]
        assert any("attention.q_proj.weight" in n for n in names)
        assert any("mlp.fc1.bias" in n for n in names)
        assert block.num_parameters() == sum(p.numel() for p in block.parameters())

    def test_freeze_and_trainable_parameters(self):
        layer = Linear(4, 4)
        assert len(layer.trainable_parameters()) == 2
        layer.freeze()
        assert layer.trainable_parameters() == []
        layer.unfreeze()
        assert len(layer.trainable_parameters()) == 2

    def test_state_dict_roundtrip(self):
        a = Linear(3, 5, rng=np.random.default_rng(0))
        b = Linear(3, 5, rng=np.random.default_rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_strict_mismatch_raises(self):
        a = Linear(3, 5)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": a.weight.data})  # missing bias

    def test_module_list_indexing(self):
        layers = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert isinstance(layers[1], Linear)
        assert len(list(layers.named_parameters())) == 6

    def test_train_eval_propagates(self):
        block = TransformerBlock(dim=8, num_heads=2, hidden_dim=16, dropout=0.1)
        block.eval()
        assert not block.attention.dropout.training
        block.train()
        assert block.mlp.dropout.training


class TestLayers:
    def test_linear_shapes_and_bias(self):
        layer = Linear(6, 3)
        out = layer(Tensor(np.ones((2, 5, 6), dtype=np.float32)))
        assert out.shape == (2, 5, 3)
        no_bias = Linear(6, 3, bias=False)
        assert no_bias.bias is None

    def test_embedding_out_of_range_raises(self):
        emb = Embedding(10, 4)
        with pytest.raises(IndexError):
            emb(np.array([11]))

    def test_layernorm_parameters_learnable(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 8)).astype(np.float32))
        out = norm(x)
        out.sum().backward()
        assert norm.weight.grad is not None and norm.bias.grad is not None

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activation_factory(self):
        from repro.nn import get_activation
        assert isinstance(get_activation("relu"), ReLU)
        assert isinstance(get_activation("gelu"), GELU)
        with pytest.raises(KeyError):
            get_activation("swish")


class TestAttentionAndMLP:
    def test_attention_output_shape_and_causality(self):
        attn = MultiHeadAttention(dim=16, num_heads=4)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 16)).astype(np.float32))
        out = attn(x)
        assert out.shape == (2, 6, 16)

    def test_attention_rejects_bad_head_count(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(dim=10, num_heads=3)

    def test_causal_mask_is_lower_triangular(self):
        mask = causal_mask(5)
        assert mask[0, 0] and not mask[0, 4] and mask[4, 0]

    def test_split_merge_heads_roundtrip(self):
        attn = MultiHeadAttention(dim=8, num_heads=2)
        x = Tensor(np.arange(2 * 3 * 8, dtype=np.float32).reshape(2, 3, 8))
        np.testing.assert_allclose(attn.merge_heads(attn.split_heads(x)).data, x.data)

    def test_mlp_backend_capture(self):
        mlp = MLPBlock(dim=8, hidden_dim=16, activation="relu")
        mlp.backend.capture_activations = True
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 8)).astype(np.float32))
        mlp(x)
        assert mlp.backend.last_activations.shape == (1, 4, 16)
        assert np.all(mlp.backend.last_activations >= 0)


class TestModelConfigs:
    def test_registry_contains_paper_models(self):
        for name in ["opt-350m", "opt-1.3b", "opt-2.7b", "gpt2-large", "gpt2-xl"]:
            assert name in list_configs()

    def test_paper_parameter_counts_are_plausible(self):
        # Within ~40% of the nominal sizes (embedding/vocab choices differ slightly).
        assert 0.25e9 < get_config("opt-350m").num_parameters() < 0.5e9
        assert 1.0e9 < get_config("opt-1.3b").num_parameters() < 1.7e9
        assert 2.2e9 < get_config("opt-2.7b").num_parameters() < 3.3e9

    def test_paper_to_executable_mapping_resolves(self):
        for paper, executable in PAPER_TO_EXECUTABLE.items():
            assert get_config(executable).family == get_config(paper).family

    def test_unknown_config_raises(self):
        with pytest.raises(KeyError):
            get_config("opt-175b")

    def test_register_custom_config(self):
        cfg = ModelConfig(name="opt-custom-test", family="opt", vocab_size=128,
                          max_seq_len=64, dim=32, num_layers=1, num_heads=2)
        register_config(cfg)
        assert get_config("opt-custom-test").dim == 32


class TestModels:
    def test_family_validation(self):
        with pytest.raises(ValueError):
            OPTModel(get_config("gpt2-tiny"))
        with pytest.raises(ValueError):
            GPT2Model(get_config("opt-tiny"))

    def test_forward_shapes(self, tiny_model):
        ids = np.arange(10).reshape(1, 10) % tiny_model.config.vocab_size
        hidden = tiny_model(ids)
        assert hidden.shape == (1, 10, tiny_model.config.dim)
        logits = tiny_model.logits(hidden)
        assert logits.shape == (1, 10, tiny_model.config.vocab_size)

    def test_sequence_too_long_raises(self, tiny_model):
        too_long = np.zeros((1, tiny_model.config.max_seq_len + 1), dtype=np.int64)
        with pytest.raises(ValueError):
            tiny_model(too_long)

    def test_loss_and_gradients_flow_to_all_parameters(self):
        model = build_model("opt-tiny", seed=3)
        ids = np.random.default_rng(0).integers(0, model.config.vocab_size, size=(2, 16))
        loss, n_valid = model.loss(ids)
        assert n_valid == 2 * 15
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == []

    def test_gpt2_model_runs(self):
        model = build_model("gpt2-tiny", seed=0)
        ids = np.random.default_rng(1).integers(0, model.config.vocab_size, size=(1, 12))
        loss, _ = model.loss(ids)
        assert np.isfinite(float(loss.data))

    def test_sparsify_init_produces_per_token_sparsity(self, tiny_model, tiny_batches):
        """The structured initialiser must yield high per-token ReLU sparsity."""
        block = tiny_model.blocks[0]
        block.mlp.backend.capture_activations = True
        tiny_model(tiny_batches[0])
        acts = block.mlp.backend.last_activations
        per_token_sparsity = (acts <= 0).mean()
        assert per_token_sparsity > 0.7
        block.mlp.backend.capture_activations = False

    def test_sequence_log_likelihood_is_negative(self, tiny_model):
        ids = np.arange(12) % tiny_model.config.vocab_size
        ll = tiny_model.sequence_log_likelihood(ids, completion_start=6)
        assert ll < 0
