"""Figure 8: memory footprints of OPT fine-tuning.

Paper: on A100, LongExposure reduces fine-tuning memory by up to 2.77x
(1.69x for OPT-350M) versus the PEFT baseline, because head-specific sparse
attention changes the score-buffer complexity from O(s²) to O(s) and the
optimal configuration keeps inactive MLP weights on the host.

Reproduced: the analytic memory model evaluated at paper scale shows the same
ordering (full > PEFT > LongExposure > LongExposure-optimal), footprints that
grow quadratically with sequence length for the baseline but much slower for
LongExposure, and OOM-style threshold crossings for the larger model.
"""

import pytest

from repro.analysis import format_table
from repro.models import get_config
from repro.runtime import MemoryModel

SEQ_LENS = [256, 512, 1024, 2048]
TRAINABLE = {"opt-350m": 1_500_000, "opt-1.3b": 3_000_000}
A100_CAPACITY_GB = 80.0


@pytest.mark.parametrize("model_name", ["opt-350m", "opt-1.3b"])
def test_fig8_memory_footprints(benchmark, model_name):
    config = get_config(model_name)
    memory = MemoryModel(config)
    rows = []

    def compute():
        rows.clear()
        for seq in SEQ_LENS:
            peft = memory.peft_baseline(4, seq, TRAINABLE[model_name])
            le = memory.long_exposure(4, seq, TRAINABLE[model_name],
                                      attention_density=0.35, mlp_density=0.55)
            optimal = memory.long_exposure(4, seq, TRAINABLE[model_name],
                                           attention_density=0.35, mlp_density=0.55,
                                           offload_inactive=True)
            rows.append([seq, peft.total_gb(), le.total_gb(), optimal.total_gb(),
                         f"{peft.total / le.total:.2f}x",
                         f"{peft.total / optimal.total:.2f}x",
                         "OOM" if peft.total_gb() > A100_CAPACITY_GB else "fits"])
        return rows[-1][1]

    benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n" + format_table(
        ["seq", "PEFT GB", "LongExposure GB", "LE (optimal) GB",
         "reduction", "optimal reduction", "PEFT on A100-80GB"],
        rows, title=f"Figure 8 reproduction: {model_name} memory footprint (analytic)"))

    # Shape assertions: ordering holds at every sequence length and the
    # reduction grows with sequence length (O(s²) vs O(s) attention buffers).
    reductions = []
    for seq, peft_gb, le_gb, opt_gb, *_ in rows:
        assert peft_gb > le_gb > opt_gb
        reductions.append(peft_gb / le_gb)
    assert reductions[-1] > reductions[0]
    # At 2048 tokens the paper-scale reductions approach the reported 1.7-2.8x.
    assert reductions[-1] > 1.5
