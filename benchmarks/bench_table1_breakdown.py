"""Table I: fine-tuning time breakdown (forward / backward / optimizer step).

Paper: on OPT-1.3B, PEFT methods (LoRA / Adapter / BitFit / P-Tuning) cut the
optimizer step to (almost) nothing but leave forward+backward essentially
unchanged, so total wall-clock drops by only ~18-30 % versus full fine-tuning.

Reproduced shape: same phase split on the executable OPT stand-in — the
optimizer share collapses under every PEFT method while forward/backward
dominate the step time.
"""

import pytest

from repro import FineTuner, TrainingConfig, build_model, get_peft_method
from repro.analysis import format_table

from conftest import BENCH_MODEL_SMALL, BENCH_SEQ_SHORT, e2e_batches

METHODS = ["full", "lora", "adapter", "bitfit", "prefix"]


def run_breakdown(method: str, steps: int = 3):
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    adapted, result = get_peft_method(method)(model)
    batches = e2e_batches(adapted, BENCH_SEQ_SHORT, num_batches=1)
    tuner = FineTuner(adapted, TrainingConfig(learning_rate=1e-4))
    report = tuner.train([batches[0]] * (steps + 1))
    mean = report.mean_timings(skip_warmup=1)
    return result, mean


@pytest.mark.parametrize("method", METHODS)
def test_table1_phase_breakdown(benchmark, method):
    result, mean = None, None

    def once():
        nonlocal result, mean
        result, mean = run_breakdown(method)
        return mean.total

    benchmark.pedantic(once, rounds=1, iterations=1)
    total = mean.total or 1.0
    print(f"\n[Table I] {method:8s} "
          f"fwd {mean.forward * 1000:7.1f}ms ({mean.forward / total:5.1%})  "
          f"bwd {mean.backward * 1000:7.1f}ms ({mean.backward / total:5.1%})  "
          f"optim {mean.optimizer * 1000:6.2f}ms ({mean.optimizer / total:5.1%})  "
          f"total {total * 1000:7.1f}ms  trainable={result.trainable_parameters}")
    # Shape assertions mirroring the paper's observation.
    if method != "full":
        assert mean.optimizer / total < 0.25, "PEFT optimizer step must be a small share"
    assert (mean.forward + mean.backward) / total > 0.6


def test_table1_summary_table():
    rows = []
    for method in METHODS:
        result, mean = run_breakdown(method, steps=2)
        total = mean.total or 1.0
        rows.append([method, mean.forward * 1000, mean.backward * 1000,
                     mean.optimizer * 1000, total * 1000,
                     f"{result.trainable_fraction:.4f}"])
    print("\n" + format_table(
        ["method", "fwd_ms", "bwd_ms", "optim_ms", "total_ms", "trainable_frac"],
        rows, title="Table I reproduction: fine-tuning time breakdown (ms/step)"))
    # PEFT methods spend less on the optimizer step than full fine-tuning.
    full_optim = rows[0][3]
    assert all(row[3] <= full_optim * 1.05 for row in rows[1:])
