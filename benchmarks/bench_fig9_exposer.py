"""Figure 9: sparsity ratios and per-layer speedups of the exposer.

Paper (left panels): head-specific masks expose more attention sparsity than
the uniform "shadowy" mask; Longformer/BigBird find more sparsity but pay for
it in accuracy because their masks ignore the input.  MLP sparsity rises with
the importance-filter threshold (1 % - 5 %).

Paper (right panels): block-sparse attention is ~1.78x faster than dense and
~1.33x faster than the shadowy-mask execution; the neuron-sparse MLP is
~4.2x faster than dense while *unstructured* shadowy MLP execution is slower
than dense.

Reproduced shape: same orderings per layer (head-specific >= shadowy sparsity,
threshold-monotone MLP sparsity) and same kernel-speed ordering (block-sparse
attention faster than dense; structured neuron-sparse MLP faster than the
unstructured baseline).
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table, model_sparsity_profile
from repro.baselines import UnstructuredSparseMLPBackend
from repro.models import build_model
from repro.nn.mlp import DenseMLPBackend
from repro.sparsity.exposer import MLPExposer
from repro.sparsity.ops import block_sparse_attention, dense_attention_reference
from repro.sparsity.ops.layout import layout_from_block_masks
from repro.sparsity.ops.neuron_sparse import expand_block_indices, neuron_sparse_linear_pair
from repro.tensor import Tensor

from conftest import BENCH_MODEL_SMALL, BLOCK_SIZE, e2e_batches

SEQ = 256


def test_fig9_sparsity_ratios(benchmark):
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    batches = e2e_batches(model, SEQ, num_batches=1)
    profiles = []

    def profile():
        profiles.extend(model_sparsity_profile(model, batches, block_size=BLOCK_SIZE))
        return len(profiles)

    benchmark.pedantic(profile, rounds=1, iterations=1)

    rows = []
    for p in profiles:
        rows.append([p.layer, f"{p.attention_head_specific:.2f}", f"{p.attention_shadowy:.2f}",
                     f"{p.attention_longformer:.2f}", f"{p.attention_bigbird:.2f}",
                     f"{p.mlp_shadowy:.2f}"]
                    + [f"{p.mlp_filtered[t]:.2f}" for t in (0.01, 0.02, 0.03, 0.05)])
    print("\n" + format_table(
        ["layer", "attn head-spec", "attn shadowy", "longformer", "bigbird",
         "mlp shadowy", "mlp@1%", "mlp@2%", "mlp@3%", "mlp@5%"],
        rows, title="Figure 9 reproduction (left): sparsity ratio per layer"))

    for p in profiles:
        # Head-specific masks expose at least as much sparsity as the uniform mask.
        assert p.attention_head_specific >= p.attention_shadowy - 1e-9
        # MLP sparsity is monotone in the filter threshold.
        values = [p.mlp_filtered[t] for t in (0.01, 0.02, 0.03, 0.05)]
        assert values == sorted(values)


def _time_fn(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_fig9_layer_kernel_speedups(benchmark):
    """Right panels: per-layer attention and MLP kernel execution time."""
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    batches = e2e_batches(model, SEQ, num_batches=1)
    profiles = model_sparsity_profile(model, batches, block_size=BLOCK_SIZE)
    rng = np.random.default_rng(0)
    cfg = model.config
    B, H, S, D = 2, cfg.num_heads, SEQ, cfg.head_dim
    q, k, v = [rng.normal(size=(B, H, S, D)).astype(np.float32) for _ in range(3)]
    causal = np.tril(np.ones((S, S), dtype=bool))
    results = {}

    def run():
        # Attention: dense vs shadowy (uniform mask) vs LongExposure (per-head).
        pool = model.blocks and None
        from repro.sparsity.patterns import build_default_pool
        pattern_pool = build_default_pool()
        head_masks = np.stack([pattern_pool.mask(name, S // BLOCK_SIZE)
                               for name in profiles[0].head_patterns])
        uniform = np.repeat(np.any(head_masks, axis=0)[None], H, axis=0)
        layout_head = layout_from_block_masks(head_masks, BLOCK_SIZE)
        layout_uniform = layout_from_block_masks(uniform, BLOCK_SIZE)
        results["attn_dense"] = _time_fn(lambda: dense_attention_reference(q, k, v, mask=causal))
        results["attn_shadowy"] = _time_fn(
            lambda: block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout_uniform))
        results["attn_longexposure"] = _time_fn(
            lambda: block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout_head))

        # MLP: dense vs unstructured shadowy vs structured neuron-sparse.
        mlp = model.blocks[0].mlp
        x = Tensor(rng.normal(size=(B, S, cfg.dim)).astype(np.float32))
        exposer = MLPExposer(BLOCK_SIZE, threshold=0.03)
        mlp.backend.capture_activations = True
        DenseMLPBackend(capture_activations=True)
        dense_backend = DenseMLPBackend(capture_activations=True)
        dense_backend(mlp, x)
        active_blocks = exposer.active_blocks(dense_backend.last_activations)
        active = expand_block_indices(active_blocks, BLOCK_SIZE, cfg.hidden_dim)
        unstructured = UnstructuredSparseMLPBackend()
        results["mlp_dense"] = _time_fn(lambda: DenseMLPBackend()(mlp, x))
        results["mlp_shadowy"] = _time_fn(lambda: unstructured(mlp, x))
        results["mlp_longexposure"] = _time_fn(
            lambda: neuron_sparse_linear_pair(x, mlp.fc1.weight, mlp.fc1.bias,
                                              mlp.fc2.weight, mlp.fc2.bias, active))
        return results["attn_longexposure"]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["attention", results["attn_dense"] * 1e3, results["attn_shadowy"] * 1e3,
         results["attn_longexposure"] * 1e3,
         f"{results['attn_dense'] / results['attn_longexposure']:.2f}x"],
        ["mlp", results["mlp_dense"] * 1e3, results["mlp_shadowy"] * 1e3,
         results["mlp_longexposure"] * 1e3,
         f"{results['mlp_dense'] / results['mlp_longexposure']:.2f}x"],
    ]
    print("\n" + format_table(
        ["component", "dense ms", "shadowy ms", "LongExposure ms", "LE speedup vs dense"],
        rows, title="Figure 9 reproduction (right): per-layer kernel time"))

    # Shape assertions from the paper: LongExposure beats dense on both
    # components, and the unstructured shadowy MLP is no faster than dense.
    assert results["attn_longexposure"] < results["attn_dense"]
    assert results["mlp_longexposure"] < results["mlp_dense"]
    assert results["mlp_shadowy"] > results["mlp_longexposure"]
