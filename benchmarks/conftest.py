"""Shared fixtures and helpers for the benchmark harness.

Every paper table/figure has a corresponding ``bench_*`` module.  Benchmarks
run on the scaled-down executable model configurations (see
``repro.models.config.PAPER_TO_EXECUTABLE``) with short sequence lengths so
the whole harness completes in minutes on a single CPU; the *shape* of each
result (who wins, how ratios move with sequence length / sparsity /
threshold) is what reproduces the paper, as recorded in EXPERIMENTS.md.

Timing methodology: each measured quantity is the best of a small number of
repeats of a full fine-tuning step (forward + backward + optimizer), measured
with ``time.perf_counter`` exactly as the trainer does, and registered with
pytest-benchmark via ``benchmark.pedantic`` so the numbers land in the
benchmark report as well as in the printed tables.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.data import E2EDatasetGenerator

# Model / sequence scaling used across the harness (paper -> executable).
BENCH_MODEL_SMALL = "opt-tiny"       # stands in for OPT-1.3B
BENCH_MODEL_LARGE = "opt-small"      # stands in for OPT-2.7B
BENCH_GPT2 = "gpt2-tiny"             # stands in for GPT-2 Large/XL
BENCH_SEQ_SHORT = 128                # stands in for seq 512
BENCH_SEQ_LONG = 256                 # stands in for seq 1024
BENCH_BATCH = 2
BLOCK_SIZE = 32


def e2e_batches(model, seq_len: int, num_batches: int = 2, batch: int = BENCH_BATCH):
    generator = E2EDatasetGenerator(seed=0)
    return generator.token_batches(num_batches, batch, seq_len,
                                   vocab_size=model.config.vocab_size)


def measure_step_time(model, ids: np.ndarray, repeats: int = 2,
                      optimizer=None) -> float:
    """Best-of-N wall-clock of a full fine-tuning step (seconds)."""
    from repro.optim import Adam
    optimizer = optimizer or Adam(model.trainable_parameters(), lr=1e-4)
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        loss, _ = model.loss(ids)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        model.zero_grad()
        best = min(best, time.perf_counter() - start)
    return best


def prepare_engine(model, seq_len: int, oracle: bool = False,
                   predictor_epochs: int = 4, block_size: int = BLOCK_SIZE) -> LongExposure:
    """Construct and prepare a LongExposure engine for ``model``."""
    config = LongExposureConfig(block_size=block_size, oracle_mode=oracle,
                                predictor_epochs=predictor_epochs, seed=0,
                                # Benchmarks favour slightly cheaper patterns; the
                                # accuracy benches confirm quality is unaffected.
                                attention_coverage=0.85)
    engine = LongExposure(config)
    calibration = e2e_batches(model, seq_len, num_batches=1)
    engine.prepare(model, calibration)
    return engine


@pytest.fixture(scope="session")
def small_dense_model():
    return build_model(BENCH_MODEL_SMALL, seed=0)


@pytest.fixture(scope="session")
def prepared_small():
    """(model, engine) pair prepared once and reused (predictors trained)."""
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    engine = prepare_engine(model, BENCH_SEQ_LONG)
    return model, engine
