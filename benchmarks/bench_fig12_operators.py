"""Figure 12: dynamic-aware operator performance vs dense across sparsity ratios.

Paper: both the block-wise sparse attention operators and the neuron-wise
sparse MLP operators get faster as the sparsity ratio rises, reaching 3-5x
over dense, with execution time nearly linear in the retained density.

Reproduced shape: execution time of both operator families decreases
monotonically (within noise) as sparsity increases, and the speedup at high
sparsity is severalfold.
"""

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.sparsity.ops import (
    block_sparse_attention,
    dense_attention_reference,
    neuron_sparse_linear_pair,
)
from repro.sparsity.ops.layout import layout_from_block_masks
from repro.sparsity.ops.neuron_sparse import expand_block_indices
from repro.sparsity.patterns import causal_block_mask
from repro.tensor import Tensor

SEQ = 256
BLOCK = 32
HEADS = 8
HEAD_DIM = 16
DIM = 128
HIDDEN = 512
SPARSITIES = [0.0, 0.25, 0.5, 0.75, 0.9]


def _time(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def random_block_layout(sparsity: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    n_blocks = SEQ // BLOCK
    causal = causal_block_mask(n_blocks)
    masks = np.zeros((HEADS, n_blocks, n_blocks), dtype=bool)
    for h in range(HEADS):
        offdiag = np.argwhere(causal & ~np.eye(n_blocks, dtype=bool))
        rng.shuffle(offdiag)
        keep = offdiag[int(len(offdiag) * sparsity):]
        masks[h][keep[:, 0], keep[:, 1]] = True
    return layout_from_block_masks(masks, BLOCK)


def test_fig12_attention_operator(benchmark):
    rng = np.random.default_rng(0)
    q, k, v = [rng.normal(size=(2, HEADS, SEQ, HEAD_DIM)).astype(np.float32) for _ in range(3)]
    causal = np.tril(np.ones((SEQ, SEQ), dtype=bool))
    results = {}

    def run():
        results["dense"] = _time(lambda: dense_attention_reference(q, k, v, mask=causal))
        for sparsity in SPARSITIES:
            layout = random_block_layout(sparsity)
            results[sparsity] = _time(
                lambda: block_sparse_attention(Tensor(q), Tensor(k), Tensor(v), layout))
        return results["dense"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["dense", results["dense"] * 1e3, "1.00x"]]
    for sparsity in SPARSITIES:
        rows.append([f"sparse {sparsity:.0%}", results[sparsity] * 1e3,
                     f"{results['dense'] / results[sparsity]:.2f}x"])
    print("\n" + format_table(["operator", "time ms", "speedup vs dense"], rows,
                              title="Figure 12a reproduction: block-sparse attention (SDD+softmax+DSD)"))
    # Time decreases with sparsity, and high sparsity yields a healthy speedup.
    assert results[0.9] < results[0.0]
    assert results["dense"] / results[0.9] > 2.0


def test_fig12_mlp_operator(benchmark):
    rng = np.random.default_rng(1)
    x = Tensor(rng.normal(size=(2, SEQ, DIM)).astype(np.float32))
    fc1_w = Tensor(rng.normal(size=(HIDDEN, DIM)).astype(np.float32))
    fc1_b = Tensor(np.zeros(HIDDEN, dtype=np.float32))
    fc2_w = Tensor(rng.normal(size=(DIM, HIDDEN)).astype(np.float32))
    fc2_b = Tensor(np.zeros(DIM, dtype=np.float32))
    n_blocks = HIDDEN // BLOCK
    results = {}

    def dense_mlp():
        hidden = np.maximum(x.data @ fc1_w.data.T + fc1_b.data, 0)
        return hidden @ fc2_w.data.T + fc2_b.data

    def run():
        results["dense"] = _time(dense_mlp)
        for sparsity in SPARSITIES:
            keep = max(1, int(round(n_blocks * (1 - sparsity))))
            active = expand_block_indices(np.arange(keep), BLOCK, HIDDEN)
            results[sparsity] = _time(
                lambda: neuron_sparse_linear_pair(x, fc1_w, fc1_b, fc2_w, fc2_b, active))
        return results["dense"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [["dense", results["dense"] * 1e3, "1.00x"]]
    for sparsity in SPARSITIES:
        rows.append([f"sparse {sparsity:.0%}", results[sparsity] * 1e3,
                     f"{results['dense'] / results[sparsity]:.2f}x"])
    print("\n" + format_table(["operator", "time ms", "speedup vs dense"], rows,
                              title="Figure 12b reproduction: neuron-sparse MLP"))
    assert results[0.9] < results[0.0]
    assert results["dense"] / results[0.9] > 1.5
