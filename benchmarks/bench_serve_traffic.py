"""Traffic simulation for the multi-tenant fine-tuning service.

Drives :class:`repro.serve.FineTuningService` with a Zipf-distributed tenant
load — the canonical fleet shape: a few hot tenants dominate, a long tail
trickles — over one shared frozen base, and reports the serving metrics that
matter at fleet scale:

* **steps/sec** — served training-step throughput;
* **p50/p99 step latency** — wall-clock from ``submit`` to step completion
  (queue wait included), the tenant-visible number;
* **capture-hit rate** — fraction of steps that replayed a compiled plan
  (the signature-bucketing payoff; ``warm`` excludes each bucket's one
  unavoidable capture step);
* **evictions / page-ins** — adapter-state churn when the resident-tenant
  budget is smaller than the tenant population.

The run also self-checks the isolation contract: the shared base digest must
be unchanged and every tenant's adapter digest distinct (different data ⇒
different adapters — any collision would mean cross-tenant state bleed).

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve_traffic.py --json serve.json

or consume the ``serve`` section of ``bench_perf_regression.py --json``.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import Dict, Sequence

import numpy as np

from repro.serve import FineTuningService, ServiceConfig

TENANTS = 8
REQUESTS = 64
ZIPF_A = 1.2


def zipf_probabilities(tenants: int, a: float = ZIPF_A) -> np.ndarray:
    """Zipf rank weights ``p_i ∝ 1 / i**a`` over ``tenants`` ranks."""
    ranks = np.arange(1, tenants + 1, dtype=np.float64)
    weights = 1.0 / ranks ** a
    return weights / weights.sum()


def bench_serve_traffic(tenants: int = TENANTS, requests: int = REQUESTS,
                        batch: int = 2,
                        seq_buckets: Sequence[int] = (16, 32),
                        zipf_a: float = ZIPF_A,
                        max_resident: int = 4,
                        max_plan_cache: int = 4,
                        model: str = "opt-tiny",
                        submit_chunk: int = 8,
                        seed: int = 0) -> Dict:
    """Run the Zipf traffic simulation; returns the serving metrics dict.

    ``max_resident < tenants`` by default, so the run exercises tenant
    eviction/page-in churn, not just the happy resident path.
    """
    service = FineTuningService(ServiceConfig(
        model=model, adapters=("lora",), seq_buckets=tuple(seq_buckets),
        max_resident_tenants=max_resident, max_plan_cache=max_plan_cache))
    base_digest = service.base_digest()
    rng = np.random.default_rng(seed)
    probabilities = zipf_probabilities(tenants, zipf_a)
    buckets = tuple(int(b) for b in seq_buckets)

    results = []
    submitted = 0
    start = time.perf_counter()
    while submitted < requests:
        # Open-loop arrivals in chunks: a burst of submissions, then the
        # service drains — queue wait shows up in the latency percentiles.
        chunk = min(submit_chunk, requests - submitted)
        for _ in range(chunk):
            tenant = int(rng.choice(tenants, p=probabilities))
            seq = int(rng.choice(buckets))
            ids = rng.integers(0, 100, size=(batch, seq))
            service.submit(f"tenant-{tenant}", ids)
        submitted += chunk
        results.extend(service.flush())
    wall_s = time.perf_counter() - start

    latencies_ms = np.sort([r.latency_seconds * 1000.0 for r in results])
    gauges = service.gauges()
    tenant_digests = {t: service.tenant_digest(t)
                      for t in sorted({r.tenant for r in results})}
    return {
        "model": model,
        "tenants": float(tenants),
        "tenants_seen": float(len(tenant_digests)),
        "requests": float(len(results)),
        "zipf_a": float(zipf_a),
        "seq_buckets": [float(b) for b in buckets],
        "max_resident_tenants": float(max_resident),
        "wall_s": wall_s,
        "steps_per_s": len(results) / wall_s if wall_s else 0.0,
        "p50_latency_ms": float(np.percentile(latencies_ms, 50)),
        "p99_latency_ms": float(np.percentile(latencies_ms, 99)),
        "capture_hit_rate": gauges["capture_hit_rate"],
        "warm_capture_hit_rate": gauges["warm_capture_hit_rate"],
        "buckets_captured": float(len({r.bucket for r in results})),
        "tenant_evictions": gauges["tenant_evictions"],
        "tenant_pageins": gauges["tenant_pageins"],
        "resident_tenants": gauges["resident_tenants"],
        "tenant_state_bytes": gauges["tenant_state_bytes"],
        # Isolation self-checks (both must hold on every run).
        "base_digest_stable": float(service.base_digest() == base_digest),
        "distinct_tenant_digests": float(
            len(set(tenant_digests.values())) == len(tenant_digests)),
    }


def _print_report(report: Dict) -> None:
    print(f"serve traffic ({report['model']}, "
          f"{int(report['tenants'])} Zipf(a={report['zipf_a']}) tenants, "
          f"{int(report['requests'])} requests, seq buckets "
          f"{[int(b) for b in report['seq_buckets']]}):")
    print(f"  throughput  {report['steps_per_s']:8.2f} steps/s")
    print(f"  latency     p50 {report['p50_latency_ms']:7.1f} ms   "
          f"p99 {report['p99_latency_ms']:7.1f} ms")
    print(f"  capture     hit rate {report['capture_hit_rate']:.3f} "
          f"(warm {report['warm_capture_hit_rate']:.3f}, "
          f"{int(report['buckets_captured'])} buckets)")
    print(f"  paging      {int(report['tenant_evictions'])} evictions, "
          f"{int(report['tenant_pageins'])} page-ins, "
          f"{int(report['resident_tenants'])} resident "
          f"(cap {int(report['max_resident_tenants'])}), "
          f"{report['tenant_state_bytes'] / 1e6:.1f} MB adapter state")
    print(f"  isolation   base stable: {bool(report['base_digest_stable'])}, "
          f"tenant digests distinct: "
          f"{bool(report['distinct_tenant_digests'])}")


def main(argv=None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report as JSON")
    parser.add_argument("--tenants", type=int, default=TENANTS)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--zipf-a", type=float, default=ZIPF_A)
    parser.add_argument("--max-resident", type=int, default=4)
    parser.add_argument("--model", default="opt-tiny")
    parser.add_argument("--quick", action="store_true",
                        help="miniature run (structural smoke)")
    args = parser.parse_args(argv)

    if args.quick:
        report = bench_serve_traffic(tenants=max(2, args.tenants // 2),
                                     requests=16, seq_buckets=(16,),
                                     max_resident=2, model=args.model)
    else:
        report = bench_serve_traffic(tenants=args.tenants,
                                     requests=args.requests,
                                     zipf_a=args.zipf_a,
                                     max_resident=args.max_resident,
                                     model=args.model)
    _print_report(report)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return report


if __name__ == "__main__":
    main()
