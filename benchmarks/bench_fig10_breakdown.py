"""Figure 10: OPT fine-tuning performance breakdown with LongExposure.

Paper: versus full fine-tuning, PEFT removes the optimizer-step cost;
LongExposure additionally shrinks forward and backward, while the predictor
overhead it introduces stays a small fraction of the step.

Reproduced shape: for each PEFT method, PEFT+LongExposure spends less time in
forward+backward than plain PEFT, and the measured prediction overhead is a
small share of the total step time.
"""

import pytest

from repro import (
    FineTuner,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.analysis import format_table

from conftest import BENCH_MODEL_SMALL, BENCH_SEQ_LONG, e2e_batches, prepare_engine

METHODS = ["full", "lora", "adapter", "bitfit"]
RESULTS = {}


def run_config(method: str, use_engine: bool, steps: int = 3):
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    engine = prepare_engine(model, BENCH_SEQ_LONG) if use_engine else None
    adapted, _ = get_peft_method(method)(model)
    if engine:
        engine.install(adapted)
    batches = e2e_batches(adapted, BENCH_SEQ_LONG, num_batches=1)
    tuner = FineTuner(adapted, TrainingConfig(learning_rate=1e-4), engine=engine)
    report = tuner.train([batches[0]] * (steps + 1))
    if engine:
        engine.uninstall(adapted)
    return report.mean_timings(skip_warmup=1)


@pytest.mark.parametrize("method", METHODS)
def test_fig10_breakdown(benchmark, method):
    holder = {}

    def run():
        holder["peft"] = run_config(method, use_engine=False)
        holder["longexposure"] = run_config(method, use_engine=(method != "full"))
        return holder["longexposure"].total

    benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS[method] = holder
    peft, le = holder["peft"], holder["longexposure"]
    print(f"\n[Figure 10] {method:8s} "
          f"PEFT: fwd {peft.forward * 1e3:6.1f} bwd {peft.backward * 1e3:6.1f} "
          f"optim {peft.optimizer * 1e3:5.1f} | +LongExposure: "
          f"fwd {le.forward * 1e3:6.1f} bwd {le.backward * 1e3:6.1f} "
          f"optim {le.optimizer * 1e3:5.1f} pred {le.prediction * 1e3:5.1f} (ms)")
    if method != "full":
        # Predictor overhead must remain a small fraction of the step.
        assert le.prediction < 0.2 * le.total


def test_fig10_summary():
    if not RESULTS:
        pytest.skip("breakdown results not collected")
    rows = []
    for method, holder in RESULTS.items():
        peft, le = holder["peft"], holder["longexposure"]
        rows.append([method, f"{peft.total * 1e3:.1f}", f"{le.total * 1e3:.1f}",
                     f"{peft.total / le.total:.2f}x",
                     f"{le.prediction * 1e3:.1f}"])
    print("\n" + format_table(
        ["method", "PEFT total ms", "+LongExposure total ms", "speedup", "prediction ms"],
        rows, title="Figure 10 reproduction: fine-tuning performance breakdown"))
