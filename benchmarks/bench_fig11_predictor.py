"""Figure 11: predictor necessity — loss curves, score visualisation, recall.

Paper: (a) fine-tuning with *random* sparse patterns of the same density
diverges (higher loss) from dense fine-tuning, while predicted patterns track
it; (b) predicted attention scores visually match the ground truth; MLP
predictors reach an average recall of 96.35 %.

Reproduced shape: loss gap of random-mask training vs dense is larger than
the gap of predicted-mask training vs dense; predictor recall is high; the
predicted block-score matrix correlates strongly with the exact block mass.
"""

import numpy as np
import pytest

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.analysis import format_table
from repro.sparsity.exposer import AttentionExposer
from repro.sparsity.ops.layout import layout_from_block_masks
from repro.sparsity.patterns import build_default_pool, causal_block_mask
from repro.sparsity.predictor.collect import collect_layer_data

from conftest import e2e_batches

SEQ = 64
STEPS = 8
BLOCK = 16


class _RandomMaskBackend:
    """Attention backend using a random causal block mask of fixed density."""

    def __init__(self, num_heads, n_blocks, density, seed):
        rng = np.random.default_rng(seed)
        causal = causal_block_mask(n_blocks)
        masks = (rng.random((num_heads, n_blocks, n_blocks)) < density) & causal
        self.layout = layout_from_block_masks(masks, BLOCK)

    def __call__(self, module, q, k, v, attn_mask, x=None):
        from repro.sparsity.ops import block_sparse_attention
        return block_sparse_attention(q, k, v, self.layout)


def run_training(mode: str):
    """mode: dense / predicted / random."""
    model = build_model("opt-tiny", seed=0)
    batches = e2e_batches(model, SEQ, num_batches=2)
    engine = None
    if mode == "predicted":
        engine = LongExposure(LongExposureConfig(block_size=BLOCK, predictor_epochs=4, seed=0))
        engine.prepare(model, batches[:1])
    model, _ = get_peft_method("lora")(model)
    if mode == "predicted":
        engine.install(model)
    elif mode == "random":
        n_blocks = SEQ // BLOCK
        for i, block in enumerate(model.blocks):
            block.attention.backend = _RandomMaskBackend(model.config.num_heads, n_blocks,
                                                         density=0.4, seed=i)
    tuner = FineTuner(model, TrainingConfig(learning_rate=5e-3), engine=engine)
    data = [batches[i % len(batches)] for i in range(STEPS)]
    report = tuner.train(data)
    if engine:
        engine.uninstall(model)
    return np.asarray(report.losses), engine


def test_fig11_loss_curves_and_recall(benchmark):
    curves = {}
    engines = {}

    def run():
        for mode in ["dense", "predicted", "random"]:
            curves[mode], engines[mode] = run_training(mode)
        return float(curves["predicted"][-1])

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[step] + [f"{curves[m][step]:.4f}" for m in ("dense", "predicted", "random")]
            for step in range(STEPS)]
    print("\n" + format_table(["step", "dense", "predicted masks", "random masks"],
                              rows, title="Figure 11a reproduction: fine-tuning loss curves"))

    predicted_gap = float(np.abs(curves["predicted"] - curves["dense"]).mean())
    random_gap = float(np.abs(curves["random"] - curves["dense"]).mean())
    print(f"mean |loss - dense|: predicted={predicted_gap:.4f} random={random_gap:.4f}")
    assert predicted_gap < random_gap, "predicted masks must track dense training better"

    engine = engines["predicted"]
    recalls = engine.mean_predictor_recall()
    print(f"predictor mean recall: attention={recalls.get('attention', 0):.4f} "
          f"mlp={recalls.get('mlp', 0):.4f}  (paper reports 96.35% for MLP)")
    assert recalls.get("mlp", 0) > 0.85


def test_fig11_prediction_visualisation(benchmark):
    """Figure 11b analogue: correlation between predicted and exact block scores."""
    model = build_model("opt-tiny", seed=0)
    batches = e2e_batches(model, SEQ, num_batches=1)
    engine = LongExposure(LongExposureConfig(block_size=BLOCK, predictor_epochs=6, seed=0))
    correlation_holder = {}

    def run():
        engine.prepare(model, batches)
        collected = collect_layer_data(model, batches)
        exposer = AttentionExposer(build_default_pool(), BLOCK)
        merged = collected[0].merged()
        exact = exposer.block_reduce(merged["attention_probs"])       # (heads, nb, nb)
        predictor = engine.attention_predictors[0]
        approx = predictor.approximate_scores(merged["attention_inputs"]).mean(axis=0)
        causal = causal_block_mask(exact.shape[-1])
        flat_exact = exact[:, causal].reshape(-1)
        flat_approx = approx[:, causal].reshape(-1)
        correlation = float(np.corrcoef(flat_exact, flat_approx)[0, 1])
        correlation_holder["value"] = correlation
        return correlation

    benchmark.pedantic(run, rounds=1, iterations=1)
    correlation = correlation_holder["value"]
    print(f"\n[Figure 11b] predicted vs exact block-score correlation: {correlation:.3f}")
    assert correlation > 0.3, "predictions must correlate with the true score structure"
