"""Figure 14: strong scalability of LongExposure with the number of workers.

Paper: with the dataset size fixed, step time decreases almost linearly as
GPUs are added (1 -> 2 -> 4) for three model sizes and three PEFT methods,
because LongExposure introduces no extra communication.

Reproduced shape: the *real* shared-memory data-parallel backend
(:class:`repro.runtime.DataParallelTrainer` — sharded worker processes,
flat-buffer chunked all-reduce over the PEFT gradient volume, rank-0 mask
broadcast at refresh steps) runs the same global batch at 1/2/4 workers and
reports the measured step wall time with the communication share broken out.
Communication stays a negligible share of the step for every PEFT method —
the paper's "no extra communication" claim.  The wall-clock *speedup* column
is only meaningful when the host actually has cores to scale over: on a
single-core CI worker the ranks time-slice one CPU, so the near-linear
assertion is gated on ``os.cpu_count()`` and the table records the flag
instead.
"""

import functools
import os

import pytest

from repro import (CaptureConfig, FineTuner, TrainingConfig, build_model,
                   get_peft_method)
from repro.analysis import format_table
from repro.optim import Adam
from repro.runtime import DataParallelTrainer

from conftest import BENCH_MODEL_SMALL, e2e_batches, prepare_engine

SEQ = 128
GLOBAL_BATCH = 4
WORKERS = [1, 2, 4]
SINGLE_CORE = (os.cpu_count() or 1) <= 1
RESULTS = {}


def _fig14_tuner(method: str):
    """Per-worker tuner factory (module-level so spawn could pickle it)."""
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    engine = prepare_engine(model, SEQ)
    adapted, _ = get_peft_method(method)(model)
    engine.install(adapted)
    optimizer = Adam(adapted.trainable_parameters(), lr=1e-4)
    return FineTuner(adapted,
                     TrainingConfig(capture=CaptureConfig(enabled=True)),
                     optimizer=optimizer, engine=engine)


@pytest.mark.parametrize("method", ["lora", "adapter", "bitfit"])
def test_fig14_strong_scaling(benchmark, method):
    model = build_model(BENCH_MODEL_SMALL, seed=0)
    data = e2e_batches(model, SEQ, num_batches=4, batch=GLOBAL_BATCH)
    factory = functools.partial(_fig14_tuner, method)
    scaling = []

    def run():
        scaling.clear()
        for world in WORKERS:
            with DataParallelTrainer(factory, workers=world,
                                     step_timeout_s=300.0) as trainer:
                report = trainer.train(data, fetch_params=False)
            scaling.append((world, report))
        return scaling[-1][1].step_wall_s[-1]

    benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS[method] = scaling
    base = scaling[0][1].steps_per_second()
    rows = []
    for world, report in scaling:
        steps_per_s = report.steps_per_second()
        comm_ms = report.mean_comm_ms()
        wall_ms = 1000.0 / steps_per_s
        rows.append([world, f"{wall_ms:.1f}", f"{comm_ms:.2f}",
                     f"{steps_per_s / base:.2f}x",
                     f"{steps_per_s / base / world:.0%}"])
    flag = " [single core: ranks time-slice one CPU]" if SINGLE_CORE else ""
    print("\n" + format_table(
        ["workers", "step ms", "comm ms", "speedup", "efficiency"],
        rows, title=f"Figure 14: strong scaling, LongExposure + {method}{flag}"))

    # Structural, host-independent: every width completed every step.
    for world, report in scaling:
        assert report.steps == len(data)
        assert all(l == l for l in report.losses)        # no NaNs
    if not SINGLE_CORE and (os.cpu_count() or 1) >= WORKERS[-1]:
        # "No extra communication": with real cores underneath, the gradient
        # exchange must stay a small share of the step for the tiny PEFT
        # gradient volumes.  (On a time-sliced single core the barrier waits
        # absorb the peers' serialized compute, so the comm column there
        # measures the scheduler, not the algorithm — gated like the speedup.)
        for world, report in scaling[1:]:
            wall_ms = 1000.0 / report.steps_per_second()
            assert report.mean_comm_ms() < 0.5 * wall_ms
        # Near-linear wall-clock scaling, only physical with cores to scale
        # over; CI containers pin one CPU, where the flag above is the
        # evidence.
        assert scaling[-1][1].steps_per_second() > 1.5 * base
