"""Figure 14: strong scalability of LongExposure with the number of GPUs.

Paper: with the dataset size fixed, step time decreases almost linearly as
GPUs are added (1 -> 2 -> 4) for three model sizes and three PEFT methods,
because LongExposure introduces no extra communication.

Reproduced shape: the data-parallel simulator (measured per-shard compute +
ring all-reduce model over the PEFT gradient volume) shows near-linear
speedup for every PEFT method, with communication a negligible share.
"""

import numpy as np
import pytest

from repro import build_model, get_peft_method
from repro.analysis import format_table
from repro.optim import Adam
from repro.runtime import DataParallelSimulator

from conftest import BENCH_MODEL_SMALL, e2e_batches, prepare_engine

SEQ = 128
GLOBAL_BATCH = 4
WORKERS = [1, 2, 4]
RESULTS = {}


@pytest.mark.parametrize("method", ["lora", "adapter", "bitfit"])
def test_fig14_strong_scaling(benchmark, method):
    scaling = []

    def run():
        model = build_model(BENCH_MODEL_SMALL, seed=0)
        engine = prepare_engine(model, SEQ)
        adapted, result = get_peft_method(method)(model)
        engine.install(adapted)
        optimizer = Adam(adapted.trainable_parameters(), lr=1e-4)

        def step(shard):
            loss, _ = adapted.loss(shard)
            loss.backward()
            optimizer.step()
            optimizer.zero_grad()
            adapted.zero_grad()

        generator = np.random.default_rng(0)
        global_batch = e2e_batches(adapted, SEQ, num_batches=1,
                                   batch=GLOBAL_BATCH)[0]
        simulator = DataParallelSimulator(step_fn=step,
                                          gradient_bytes=result.trainable_parameters * 4)
        scaling.extend(simulator.run(global_batch, WORKERS))
        engine.uninstall(adapted)
        return scaling[-1].step_time_s

    benchmark.pedantic(run, rounds=1, iterations=1)
    RESULTS[method] = scaling
    rows = [[r.num_workers, f"{r.step_time_s * 1e3:.1f}", f"{r.compute_time_s * 1e3:.1f}",
             f"{r.communication_time_s * 1e6:.1f}us", f"{r.speedup_vs_single:.2f}x",
             f"{r.efficiency:.0%}"] for r in scaling]
    print("\n" + format_table(
        ["workers", "step ms", "compute ms", "comm", "speedup", "efficiency"],
        rows, title=f"Figure 14 reproduction: strong scaling, LongExposure + {method}"))

    # Near-linear scaling with negligible communication.
    assert scaling[-1].speedup_vs_single > 1.8
    assert all(r.communication_time_s < 0.05 * r.step_time_s for r in scaling[1:])
