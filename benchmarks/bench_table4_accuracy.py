"""Table IV: downstream accuracy with vs. without LongExposure.

Paper: fine-tuning OPT on Alpaca with LongExposure changes downstream
accuracy on PIQA/Winogrande/RTE/COPA/HellaSwag only marginally versus plain
LoRA fine-tuning.

Reproduced shape: at miniature scale, the same model fine-tuned on the
synthetic Alpaca corpus with and without LongExposure reaches accuracies
within a small margin of each other on every synthetic task suite.
"""

import numpy as np
import pytest

from repro import (
    FineTuner,
    LongExposure,
    LongExposureConfig,
    TrainingConfig,
    build_model,
    get_peft_method,
)
from repro.analysis import format_table
from repro.data import AlpacaDatasetGenerator, build_task_suite, evaluate_model_on_task

STEPS = 15
SEQ = 64


def finetune(with_longexposure: bool):
    model = build_model("opt-tiny", seed=0)
    generator = AlpacaDatasetGenerator(seed=0)
    batches = generator.token_batches(4, batch_size=2, seq_len=SEQ,
                                      vocab_size=model.config.vocab_size)
    engine = None
    if with_longexposure:
        engine = LongExposure(LongExposureConfig(block_size=16, predictor_epochs=4, seed=0))
        engine.prepare(model, batches[:1])
    model, _ = get_peft_method("lora")(model)
    if engine:
        engine.install(model)
    tuner = FineTuner(model, TrainingConfig(learning_rate=5e-3), engine=engine)
    data = [batches[i % len(batches)] for i in range(STEPS)]
    report = tuner.train(data)
    if engine:
        engine.uninstall(model)
    return model, report


def test_table4_accuracy_with_and_without_longexposure(benchmark):
    suite = build_task_suite(examples_per_task=12, seed=1)
    outcome = {}

    def run():
        for label, use_engine in [("without", False), ("with", True)]:
            model, report = finetune(use_engine)
            accs = {}
            for name, task in suite.tasks.items():
                accs[name] = evaluate_model_on_task(
                    model, task, suite.tokenizer, vocab_size=model.config.vocab_size,
                    max_examples=8)
            outcome[label] = {"accs": accs, "loss": report.final_loss}
        return outcome["with"]["loss"]

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name in suite.names():
        without = outcome["without"]["accs"][name]
        with_le = outcome["with"]["accs"][name]
        rows.append([name, f"{without['accuracy']:.2%}", f"{without['stderr']:.2%}",
                     f"{with_le['accuracy']:.2%}", f"{with_le['stderr']:.2%}"])
    print("\n" + format_table(
        ["task", "acc w/o LE", "stderr", "acc w/ LE", "stderr"],
        rows, title="Table IV reproduction: accuracy with vs. without LongExposure"))
    print(f"final LM loss: without={outcome['without']['loss']:.4f} "
          f"with={outcome['with']['loss']:.4f}")

    # Shape assertion: accuracy differences stay small (the paper reports
    # sub-percent to low-percent deltas; at miniature scale we allow more
    # statistical noise but no collapse).
    for name in suite.names():
        delta = abs(outcome["without"]["accs"][name]["accuracy"]
                    - outcome["with"]["accs"][name]["accuracy"])
        assert delta <= 0.30, f"accuracy collapsed on {name}"
    # Training losses also track each other.
    assert abs(outcome["without"]["loss"] - outcome["with"]["loss"]) < 0.5
