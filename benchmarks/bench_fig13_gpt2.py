"""Figure 13: GPT-2 execution time per batch and speedup.

Paper: GPT-2 uses GeLU, so only the attention-side optimisations apply; the
speedups (1.18-1.66x) are smaller than for OPT but still grow with sequence
length.

Reproduced shape: on the GeLU stand-in model only the attention backend is
swapped (verified), the measured speedup is smaller than the OPT speedup at
the same setting, and it does not shrink when the sequence grows.
"""

import pytest

from repro import build_model, get_peft_method
from repro.analysis import format_table
from repro.nn.mlp import DenseMLPBackend
from repro.sparsity.engine import SparseAttentionBackend

from conftest import (
    BENCH_GPT2,
    BENCH_SEQ_LONG,
    BENCH_SEQ_SHORT,
    e2e_batches,
    measure_step_time,
    prepare_engine,
)

RESULTS = {}


@pytest.mark.parametrize("seq_len", [BENCH_SEQ_SHORT, BENCH_SEQ_LONG])
def test_fig13_gpt2_speedup(benchmark, seq_len):
    holder = {}

    def run():
        dense_model = build_model(BENCH_GPT2, seed=0)
        ids = e2e_batches(dense_model, seq_len, num_batches=1)[0]
        dense_adapted, _ = get_peft_method("lora")(dense_model)
        holder["dense"] = measure_step_time(dense_adapted, ids, repeats=2)

        sparse_model = build_model(BENCH_GPT2, seed=0)
        engine = prepare_engine(sparse_model, seq_len)
        sparse_adapted, _ = get_peft_method("lora")(sparse_model)
        engine.install(sparse_adapted)
        try:
            # GeLU model: attention optimised, MLP left dense (paper setup).
            assert isinstance(sparse_model.blocks[0].attention.backend, SparseAttentionBackend)
            assert isinstance(sparse_model.blocks[0].mlp.backend, DenseMLPBackend)
            sparse_adapted.loss(ids)
            holder["sparse"] = measure_step_time(sparse_adapted, ids, repeats=2)
        finally:
            engine.uninstall(sparse_adapted)
        return holder["sparse"]

    benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = holder["dense"] / holder["sparse"]
    RESULTS[seq_len] = (holder["dense"], holder["sparse"], speedup)
    print(f"\n[Figure 13] GPT-2 seq={seq_len}: PEFT {holder['dense'] * 1e3:.1f}ms "
          f"+LongExposure {holder['sparse'] * 1e3:.1f}ms speedup {speedup:.2f}x")
    assert speedup > 0.7


def test_fig13_summary():
    if len(RESULTS) < 2:
        pytest.skip("per-sequence results missing")
    rows = [[seq, f"{d * 1e3:.1f}", f"{s * 1e3:.1f}", f"{sp:.2f}x"]
            for seq, (d, s, sp) in sorted(RESULTS.items())]
    print("\n" + format_table(["seq", "PEFT ms", "+LongExposure ms", "speedup"], rows,
                              title="Figure 13 reproduction: GPT-2 (attention-only optimisation)"))
    seqs = sorted(RESULTS)
    assert RESULTS[seqs[-1]][2] >= RESULTS[seqs[0]][2] * 0.8
