"""End-to-end perf-regression benchmark for the fused-kernel + geometry-cache pass.

Measures the full fine-tuning step (forward + backward + Adam step) of a
GPT-2-small-style dense model and of a sparse (LongExposure oracle) OPT
model, in two execution modes each:

* **fused** — the default path: single-node hand-backward kernels
  (:mod:`repro.tensor.fused`) and the block-sparse geometry cache;
* **baseline** — the deep-tape execution: primitive-composition kernels
  (:mod:`repro.tensor.reference`) and per-call geometry recomputation —
  the cost model the paper's fused-operator argument is made against.

Also micro-benchmarks the individual fused ops against their taped
compositions.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py --json BENCH_perf.json

The emitted JSON records all raw timings plus the speedup ratios; the
acceptance bar for the perf pass is ``dense_step.speedup >= 1.5``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.models import build_model
from repro.optim import Adam
from repro.runtime.profiler import PhaseProfiler
from repro.sparsity import LongExposure, LongExposureConfig
from repro.tensor import Tensor, fused, reference

DENSE_MODEL = "gpt2-small-repro"     # GPT-2-small-style executable config
SPARSE_MODEL = "opt-small"
BATCH = 4
SEQ = 128
BLOCK_SIZE = 32


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _train_step_fn(model, ids: np.ndarray, optimizer) -> Callable[[], None]:
    def step() -> None:
        loss, _ = model.loss(ids)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        model.zero_grad()
    return step


def bench_dense_step(repeats: int = 5, batch: int = BATCH, seq: int = SEQ,
                     model_name: str = DENSE_MODEL) -> Dict[str, float]:
    """Fused vs. reference-tape wall clock of a dense fine-tune step."""
    result: Dict[str, float] = {}
    profiler = PhaseProfiler()
    for mode in ("fused", "reference"):
        fused.set_fused_kernels(mode == "fused")
        try:
            model = build_model(model_name, seed=0)
            ids = np.random.default_rng(0).integers(
                0, model.config.vocab_size, size=(batch, seq))
            optimizer = Adam(model.trainable_parameters(), lr=1e-4)
            step = _train_step_fn(model, ids, optimizer)
            step()  # warm-up (also amortises one-time caches)
            profiler.start(mode)
            result[f"{mode}_s"] = _best_of(step, repeats)
            profiler.stop(mode)
        finally:
            fused.set_fused_kernels(True)
    result["speedup"] = result["reference_s"] / result["fused_s"]
    return result


def bench_sparse_step(repeats: int = 5, batch: int = BATCH, seq: int = SEQ,
                      model_name: str = SPARSE_MODEL) -> Dict[str, float]:
    """Geometry-cache-on vs. cache-off wall clock of a sparse fine-tune step.

    Both runs use the fused tensor kernels; the only difference is whether
    the block-sparse index geometry (segments, element masks, the backward
    column permutation) is memoized or rebuilt on every attention call.
    """
    result: Dict[str, float] = {}
    model = build_model(model_name, seed=0)
    ids = np.random.default_rng(0).integers(
        0, model.config.vocab_size, size=(batch, seq))
    config = LongExposureConfig(block_size=BLOCK_SIZE, oracle_mode=True, seed=0)
    engine = LongExposure(config)
    engine.prepare(model, [ids])
    engine.install(model)
    try:
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        step = _train_step_fn(model, ids, optimizer)
        saved_cache = engine.geometry_cache
        best = {"cached": float("inf"), "uncached": float("inf")}
        step()  # warm-up
        # Interleave the two modes so machine-load drift hits both equally.
        for _ in range(max(1, repeats)):
            for mode, cache in (("cached", saved_cache), ("uncached", None)):
                engine.geometry_cache = cache
                start = time.perf_counter()
                step()
                best[mode] = min(best[mode], time.perf_counter() - start)
        engine.geometry_cache = saved_cache
        result["cached_s"] = best["cached"]
        result["uncached_s"] = best["uncached"]
    finally:
        engine.uninstall(model)
    result["speedup"] = result["uncached_s"] / result["cached_s"]
    return result


def bench_geometry(repeats: int = 50, seq: int = 512,
                   block_size: int = 16) -> Dict[str, float]:
    """Per-call cost of deriving vs. looking up the block-sparse geometry.

    Uses a long-sequence, fine-grained block grid (the regime the paper's
    larger configurations run in) where the ``nnz * block²`` element-mask
    construction is no longer trivial.  This isolates exactly the work
    :class:`LayoutGeometryCache` removes from every sparse attention call —
    the end-to-end sparse step above is dominated by the oracle exposer at
    benchmark scale, so the cache's contribution is reported separately.
    """
    from repro.sparsity.ops import LayoutGeometryCache, compute_block_geometry
    from repro.sparsity.patterns import build_default_pool
    from repro.sparsity.ops.layout import LayoutPool

    pool = LayoutPool(build_default_pool(), block_size)
    names = ["local2", "dense", "local4", "local4+global2", "local2", "dense",
             "local8+global2", "strided2+local2"]
    layout = pool.combine(names, seq)

    compute_s = _best_of(lambda: compute_block_geometry(layout, seq), repeats)
    cache = LayoutGeometryCache()
    cache.lookup(layout, seq)
    lookup_s = _best_of(lambda: cache.lookup(layout, seq), repeats)
    return {
        "layout_nnz": float(layout.nnz),
        "compute_s": compute_s,
        "lookup_s": lookup_s,
        "speedup": compute_s / max(lookup_s, 1e-12),
    }


def bench_fused_ops(repeats: int = 20) -> Dict[str, Dict[str, float]]:
    """Per-op forward+backward micro-benchmarks, fused vs. taped composition."""
    rng = np.random.default_rng(0)
    batch, heads, seq, dim, vocab = 4, 8, 128, 64, 1024

    def run(make_loss: Callable[[], Tensor]) -> float:
        def once() -> None:
            make_loss().backward()
        once()
        return _best_of(once, repeats)

    x_attn = [Tensor(rng.normal(size=(batch, heads, seq, dim)).astype(np.float32),
                     requires_grad=True) for _ in range(3)]
    scores = Tensor(rng.normal(size=(batch, heads, seq, seq)).astype(np.float32),
                    requires_grad=True)
    from repro.nn.attention import causal_mask
    mask = causal_mask(seq)

    x_ln = Tensor(rng.normal(size=(batch, seq, 8 * dim)).astype(np.float32),
                  requires_grad=True)
    w_ln = Tensor(np.ones(8 * dim, dtype=np.float32), requires_grad=True)
    b_ln = Tensor(np.zeros(8 * dim, dtype=np.float32), requires_grad=True)

    logits = Tensor(rng.normal(size=(batch, seq, vocab)).astype(np.float32),
                    requires_grad=True)
    targets = rng.integers(0, vocab, size=(batch, seq))

    x_lin = Tensor(rng.normal(size=(batch, seq, 8 * dim)).astype(np.float32),
                   requires_grad=True)
    w_lin = Tensor(rng.normal(0, 0.02, size=(4 * 8 * dim, 8 * dim)).astype(np.float32),
                   requires_grad=True)
    b_lin = Tensor(np.zeros(4 * 8 * dim, dtype=np.float32), requires_grad=True)

    cases: Dict[str, Dict[str, Callable[[], Tensor]]] = {
        "masked_softmax": {
            "fused": lambda: fused.masked_softmax(scores, mask).sum(),
            "reference": lambda: reference.masked_softmax(scores, mask).sum(),
        },
        "attention_core": {
            "fused": lambda: fused.scaled_dot_product_attention(
                x_attn[0], x_attn[1], x_attn[2], mask).sum(),
            "reference": lambda: reference.scaled_dot_product_attention(x_attn[0], x_attn[1], x_attn[2], mask).sum(),
        },
        "layer_norm": {
            "fused": lambda: fused.layer_norm(x_ln, w_ln, b_ln).sum(),
            "reference": lambda: reference.layer_norm(x_ln, w_ln, b_ln).sum(),
        },
        "cross_entropy": {
            "fused": lambda: fused.cross_entropy_logits(logits, targets)[0],
            "reference": lambda: reference.cross_entropy_logits(logits, targets)[0],
        },
        "linear_gelu": {
            "fused": lambda: fused.linear(x_lin, w_lin, b_lin, activation="gelu").sum(),
            "reference": lambda: reference.linear(x_lin, w_lin, b_lin, activation="gelu").sum(),
        },
    }

    results: Dict[str, Dict[str, float]] = {}
    for name, impls in cases.items():
        fused_s = run(impls["fused"])
        reference_s = run(impls["reference"])
        results[name] = {"fused_s": fused_s, "reference_s": reference_s,
                         "speedup": reference_s / fused_s}
    return results


def run_benchmark(repeats: int = 5, op_repeats: int = 20,
                  batch: int = BATCH, seq: int = SEQ) -> Dict:
    report = {
        "meta": {
            "dense_model": DENSE_MODEL,
            "sparse_model": SPARSE_MODEL,
            "batch": batch,
            "seq": seq,
            "repeats": repeats,
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "dense_step": bench_dense_step(repeats, batch=batch, seq=seq),
        "sparse_step": bench_sparse_step(repeats, batch=batch, seq=seq),
        "geometry": bench_geometry(),
        "ops": bench_fused_ops(op_repeats),
    }
    return report


def _print_report(report: Dict) -> None:
    dense = report["dense_step"]
    sparse = report["sparse_step"]
    print(f"dense fine-tune step ({report['meta']['dense_model']}, "
          f"batch {report['meta']['batch']} x seq {report['meta']['seq']}):")
    print(f"  fused     {dense['fused_s'] * 1000:8.1f} ms")
    print(f"  reference {dense['reference_s'] * 1000:8.1f} ms")
    print(f"  speedup   {dense['speedup']:8.2f}x")
    print(f"sparse fine-tune step ({report['meta']['sparse_model']}, oracle):")
    print(f"  cached    {sparse['cached_s'] * 1000:8.1f} ms")
    print(f"  uncached  {sparse['uncached_s'] * 1000:8.1f} ms")
    print(f"  speedup   {sparse['speedup']:8.2f}x")
    geom = report["geometry"]
    print(f"sparse geometry per call (seq 512, block 16, nnz {int(geom['layout_nnz'])}):")
    print(f"  compute   {geom['compute_s'] * 1e3:8.3f} ms")
    print(f"  lookup    {geom['lookup_s'] * 1e3:8.3f} ms")
    print(f"  speedup   {geom['speedup']:8.1f}x")
    print("fused ops (forward + backward, best-of-N):")
    for name, row in report["ops"].items():
        print(f"  {name:<16} {row['fused_s'] * 1e3:7.2f} ms vs "
              f"{row['reference_s'] * 1e3:7.2f} ms  ({row['speedup']:.2f}x)")


def main(argv=None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON (e.g. BENCH_perf.json)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repeats for the step benchmarks")
    parser.add_argument("--op-repeats", type=int, default=20,
                        help="best-of-N repeats for the op micro-benchmarks")
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--seq", type=int, default=SEQ)
    args = parser.parse_args(argv)

    if args.json:
        # Fail on an unwritable path *before* spending minutes benchmarking.
        with open(args.json, "a"):
            pass

    report = run_benchmark(repeats=args.repeats, op_repeats=args.op_repeats,
                           batch=args.batch, seq=args.seq)
    _print_report(report)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return report


if __name__ == "__main__":
    main()
