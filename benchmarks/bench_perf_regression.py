"""End-to-end perf-regression benchmark for the fused-kernel + geometry-cache pass.

Measures the full fine-tuning step (forward + backward + Adam step) of a
GPT-2-small-style dense model and of a sparse (LongExposure oracle) OPT
model, in two execution modes each:

* **fused** — the default path: single-node hand-backward kernels
  (:mod:`repro.tensor.fused`) and the block-sparse geometry cache;
* **baseline** — the deep-tape execution: primitive-composition kernels
  (:mod:`repro.tensor.reference`) and per-call geometry recomputation —
  the cost model the paper's fused-operator argument is made against.

Also micro-benchmarks the individual fused ops against their taped
compositions, plus (since the sparse-chain pass):

* **sparse_chain** — the in-place fused block-sparse SDD → masked-softmax →
  DSD chain against the pre-fusion chain (the PR-1 implementation with its
  ``np.where`` / exp / divide temporaries, kept verbatim below as the
  baseline), both at the operator level and inside the end-to-end sparse
  step; the acceptance bar is ``sparse_chain.speedup >= 1.3``;
* **crossover** — dense fused attention vs. the sparse chain at seq 512
  under a realistic predicted-pattern layout (the regime where block
  sparsity must beat the fused dense kernel);
* **optimizer_step** — flattened single-buffer Adam vs. the per-parameter
  Python loop;
* **embedding_scatter** — the sort/``np.add.reduceat`` embedding-backward
  scatter vs. ``np.add.at`` at GPT-2 vocabulary scale;
* **predicted_step** (since the predictor-scheduling pass) — the end-to-end
  *predicted* sparse fine-tune step (low-rank probes instead of the oracle's
  exact scores), against the oracle step and against itself with
  ``predict_interval > 1`` (masks refreshed every K steps and reused in
  between), with the mask drift the reuse incurs reported alongside;
* **prediction_overhead** — the mask-derivation path in isolation: the
  batched single-GEMM probe vs. the per-head einsum probe, the two-stage
  ``block_reduce`` vs. the 6-D reshape-sum at seq 512, and the vectorised
  pattern matcher vs. the scalar per-head/per-pattern loop;
* **predicted_quality** (since the calibration pass) — the predicted-vs-
  oracle *block-sparsity gap* on fresh evaluation batches across the
  calibration length grid: oracle layouts, calibrated predicted layouts
  (per-head fitted thresholds + pattern snapping), and the uncalibrated
  fixed-threshold layouts, with the fraction of oracle-active blocks the
  predicted layouts retain; the acceptance bar is ``gap <= 0.05`` at the
  long-sequence end of the grid;
* **optimizer_regimes** — the flat vs. loop Adam update swept per
  parameter-size regime (fixed total elements, growing per-parameter size),
  validating :data:`repro.optim.adam.FLAT_MEAN_SIZE_THRESHOLD`: flat must
  win below the threshold and the loop at or above it (measured crossover
  ~4k elements under NumPy 2.4, matching the threshold);
* **step_capture** (since the step-capture pass) — captured vs. uncaptured
  training steps for the dense, oracle-sparse and predicted configurations:
  the buffer arena recycles every op's output/temporary buffers across steps
  (allocations/step must read ~0 at steady state) and the backward replays
  the recorded tape schedule instead of re-sorting the graph, with a
  shape-change probe asserting exactly one re-capture.  Acceptance bars:
  ``step_capture.predicted.pre_pr_speedup >= 1.15`` (captured vs the
  PR-4-form uncaptured path) with ``captured_allocs_per_step == 0``, and
  ``sparse_step.speedup >= 0.97``
  (the PR-4 ``cached_s > uncached_s`` anomaly diagnosed: at block 32 /
  seq 128 the whole geometry recompute is ~0.7 ms of a ~90 ms step — below
  the noise floor, so the end-to-end ratio is noise around ~1.01; the
  section now reports ``geometry_fraction`` as evidence and the real cache
  win stays locked by the per-call ``geometry`` section).

Re-measured under NumPy 2.4 (the PR-2 leftover): ``np.add.at`` remains ~2x
slower than the sort + ``np.add.reduceat`` ``scatter_add_rows`` on both
Zipf-duplicated and uniform token streams, so the segmented-reduce scatter
stays the embedding-backward path with no NumPy-version gate.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py --json BENCH_perf.json

``--quick`` runs every section at miniature shapes with single repeats — a
structural smoke of the whole harness (CI runs it on every push) whose
timings and ratios are meaningless; never compare a ``--quick`` JSON against
acceptance bars.

The emitted JSON records all raw timings plus the speedup ratios; the
acceptance bars for the perf passes are ``dense_step.speedup >= 1.5``,
``sparse_chain.speedup >= 1.3``, ``predicted_quality`` gap ``<= 0.05``,
``sparse_step.speedup >= 0.97`` (cache within noise — see the diagnosis in
:func:`bench_sparse_step`), ``step_capture.predicted.pre_pr_speedup >=
1.15`` with zero captured allocations per step, and (since the full-step
compiler pass) ``full_step.speedup_vs_captured >= 1.15`` at threads=1 —
the compiled steady-state step (flat forward plan + retained backward
schedule + flat optimizer tail, zero Python graph builds) against the PR-5
backward-only captured step, with an ``executor_threads`` 1/2/4 curve for
the dependency-levelled forward executor (flat on a single-core worker).
Since the streaming-attention pass the ``long_context`` section sweeps
seq 512..4096 three ways (materializing, streaming, streaming
block-sparse) and reports ms/token plus the tracemalloc step peak; the
bar is ``long_context.wall_peak_ratio >= 4`` — the streaming step must
peak at under a quarter of the materializing step at seq 4096 (the
O(seq^2) memory wall).
Since the data-parallel pass the ``scaling`` section drives the real
shared-memory backend (:class:`repro.runtime.DataParallelTrainer`) at
worker counts 1/2/4 and records steps/sec with per-step communication
time broken out; there is no speedup bar — on a single-core worker the
ranks time-slice one CPU, so the section records ``cpu_count`` and the
``single_core`` flag and the numbers are read against them.
"""

from __future__ import annotations

import argparse
import contextlib
import functools
import json
import os
import platform
import time
from typing import Callable, Dict, Optional

import numpy as np

from repro.models import build_model
from repro.optim import Adam
from repro.runtime.profiler import PhaseProfiler
from repro.sparsity import LongExposure, LongExposureConfig
from repro.sparsity.ops import LayoutGeometryCache, block_sparse_attention
from repro.sparsity.ops.block_sparse import (
    _blockify,
    _pad_to_blocks,
    compute_block_geometry,
)
from repro.sparsity.ops.layout import LayoutPool
from repro.sparsity.patterns import block_count, build_default_pool, causal_block_mask
from repro.sparsity.predictor import AttentionPredictor
from repro.tensor import Tensor, fused, reference
from repro.tensor.tensor import custom_op, scatter_add_rows

DENSE_MODEL = "gpt2-small-repro"     # GPT-2-small-style executable config
SPARSE_MODEL = "opt-small"
BATCH = 4
SEQ = 128
BLOCK_SIZE = 32
PREDICT_INTERVAL = 4                 # K used by the predicted_step bench
PREDICTED_SEQ = 512                  # long-sequence regime of predicted_step
CHAIN_HEADS = 8
CHAIN_DIM = 64
CHAIN_PATTERNS = ["local2", "dense", "local4", "local4+global2",
                  "local2", "dense", "local8+global2", "strided2+local2"]


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _train_step_fn(model, ids: np.ndarray, optimizer) -> Callable[[], None]:
    def step() -> None:
        loss, _ = model.loss(ids)
        loss.backward()
        optimizer.step()
        optimizer.zero_grad()
        model.zero_grad()
    return step


def bench_dense_step(repeats: int = 5, batch: int = BATCH, seq: int = SEQ,
                     model_name: str = DENSE_MODEL) -> Dict[str, float]:
    """Fused vs. reference-tape wall clock of a dense fine-tune step."""
    result: Dict[str, float] = {}
    profiler = PhaseProfiler()
    for mode in ("fused", "reference"):
        fused.set_fused_kernels(mode == "fused")
        try:
            model = build_model(model_name, seed=0)
            ids = np.random.default_rng(0).integers(
                0, model.config.vocab_size, size=(batch, seq))
            optimizer = Adam(model.trainable_parameters(), lr=1e-4)
            step = _train_step_fn(model, ids, optimizer)
            step()  # warm-up (also amortises one-time caches)
            profiler.start(mode)
            result[f"{mode}_s"] = _best_of(step, repeats)
            profiler.stop(mode)
        finally:
            fused.set_fused_kernels(True)
    result["speedup"] = result["reference_s"] / result["fused_s"]
    return result


def _pre_pr_oracle_attention_layout(engine, module, q, k, seq_len):
    """The PR-1 oracle softmax (out-of-place temporaries), for the baseline."""
    from repro.nn.attention import causal_mask

    scale = 1.0 / np.sqrt(module.head_dim)
    scores = np.matmul(q.data, np.swapaxes(k.data, -1, -2)) * scale
    causal = causal_mask(seq_len)
    scores = np.where(causal, scores, -1e9)
    scores = scores - scores.max(axis=-1, keepdims=True)
    probs = np.exp(scores) * causal
    probs = probs / np.maximum(probs.sum(axis=-1, keepdims=True), 1e-12)
    masks, names = engine.attention_exposer.head_block_masks(probs)
    return engine.layout_pool.combine(list(names), seq_len)


def _pre_pr_oracle_mlp_blocks(engine, mlp, x):
    """The PR-1 oracle MLP activation probe (out-of-place), for the baseline."""
    pre = x.data.reshape(-1, mlp.dim) @ mlp.fc1.weight.data.T + mlp.fc1.bias.data
    act = np.maximum(pre, 0.0).reshape(*x.data.shape[:-1], mlp.hidden_dim)
    return engine.mlp_exposer.active_blocks(act)


def _pre_pr_scatter_add_rows(out, indices, updates):
    """The PR-1 embedding-backward scatter (``np.add.at``), for the baseline."""
    indices = np.asarray(indices).reshape(-1)
    np.add.at(out, indices, np.asarray(updates).reshape(indices.shape[0],
                                                        *out.shape[1:]))


@contextlib.contextmanager
def _pre_pr_sparse_path(engine, full: bool):
    """Swap this PR's sparse-step optimisations back to their PR-1 forms.

    ``full=False`` rolls back only the fused attention chain (isolating the
    chain fusion); ``full=True`` additionally restores the out-of-place
    oracle attention softmax and MLP probe and the ``np.add.at`` embedding
    scatter — the complete PR-1 sparse step.  (The optimizer needs no
    rollback here: full fine-tuning routes Adam onto the same per-parameter
    loop PR 1 ran.)
    """
    import types

    import repro.sparsity.engine as engine_module
    import repro.tensor.tensor as tensor_module

    saved_op = engine_module.block_sparse_attention
    saved_oracle = engine.oracle_attention_layout
    saved_mlp_oracle = engine.oracle_mlp_blocks
    saved_scatter = tensor_module.scatter_add_rows
    engine_module.block_sparse_attention = pre_pr_block_sparse_attention
    if full:
        engine.oracle_attention_layout = types.MethodType(
            _pre_pr_oracle_attention_layout, engine)
        engine.oracle_mlp_blocks = types.MethodType(
            _pre_pr_oracle_mlp_blocks, engine)
        tensor_module.scatter_add_rows = _pre_pr_scatter_add_rows
    try:
        yield
    finally:
        engine_module.block_sparse_attention = saved_op
        engine.oracle_attention_layout = saved_oracle
        engine.oracle_mlp_blocks = saved_mlp_oracle
        tensor_module.scatter_add_rows = saved_scatter


def bench_sparse_step(repeats: int = 5, batch: int = BATCH, seq: int = SEQ,
                      model_name: str = SPARSE_MODEL) -> Dict[str, float]:
    """Sparse fine-tune step: geometry cache, chain fusion, full PR deltas.

    All runs use the fused dense tensor kernels.  Four interleaved modes:

    * ``cached`` — this PR's full sparse step (the default path);
    * ``uncached`` — geometry memo disabled (index reconstruction per call);
    * ``pre_pr_chain`` — only the attention chain rolled back to the PR-1
      temporaries form (``chain_speedup`` isolates the chain fusion);
    * ``pre_pr_full`` — chain, oracle softmax and embedding scatter all
      rolled back (``pre_pr_speedup`` is the end-to-end sparse-step win of
      this PR; the acceptance bar is >= 1.3).
    """
    result: Dict[str, float] = {}
    model = build_model(model_name, seed=0)
    ids = np.random.default_rng(0).integers(
        0, model.config.vocab_size, size=(batch, seq))
    config = LongExposureConfig(block_size=BLOCK_SIZE, oracle_mode=True, seed=0)
    engine = LongExposure(config)
    engine.prepare(model, [ids])
    engine.install(model)
    try:
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        step = _train_step_fn(model, ids, optimizer)
        saved_cache = engine.geometry_cache
        modes = ("cached", "uncached", "pre_pr_chain", "pre_pr_full")
        best = {mode: float("inf") for mode in modes}
        # Diagnosis of the PR-4 ``cached_s > uncached_s`` anomaly (0.97x):
        # at this configuration (block 32 -> a 4x4 block grid) recomputing
        # the geometry costs ~0.17 ms per layer, ~0.7 ms per step — under
        # 1 % of the ~90 ms step, i.e. *below the run-to-run noise floor*.
        # No lookup overhead crept in; the end-to-end ratio is simply
        # noise around ~1.01.  ``geometry_fraction`` below reports the
        # measured share so the JSON carries the explanation, samples are
        # two-step windows to cut timer jitter, and the acceptance bar is
        # ``speedup >= 0.97`` end-to-end (the real cache win is locked by
        # the per-call ``geometry`` section: lookup ~10³x cheaper).
        inner = 2
        geometry_s = 0.0
        step()  # warm-up
        # Interleave the modes so machine-load drift hits all equally.
        for _ in range(max(1, repeats)):
            for mode in modes:
                engine.geometry_cache = None if mode == "uncached" else saved_cache
                if mode.startswith("pre_pr"):
                    rollback = _pre_pr_sparse_path(engine,
                                                   full=mode == "pre_pr_full")
                else:
                    rollback = contextlib.nullcontext()
                with rollback:
                    start = time.perf_counter()
                    for _ in range(inner):
                        step()
                    best[mode] = min(best[mode],
                                     (time.perf_counter() - start) / inner)
        engine.geometry_cache = saved_cache
        for mode in modes:
            result[f"{mode}_s"] = best[mode]
        layouts = [backend.last_layout for backend in engine._sparse_backends
                   if getattr(backend, "last_layout", None) is not None]
        for layout in layouts:
            geometry_s += _best_of(
                lambda lay=layout: compute_block_geometry(lay, seq), 10)
    finally:
        engine.uninstall(model)
    result["geometry_s_per_step"] = geometry_s
    result["geometry_fraction"] = geometry_s / max(result["cached_s"], 1e-12)
    result["speedup"] = result["uncached_s"] / result["cached_s"]
    result["chain_speedup"] = result["pre_pr_chain_s"] / result["cached_s"]
    result["pre_pr_speedup"] = result["pre_pr_full_s"] / result["cached_s"]
    return result


def bench_geometry(repeats: int = 50, seq: int = 512,
                   block_size: int = 16) -> Dict[str, float]:
    """Per-call cost of deriving vs. looking up the block-sparse geometry.

    Uses a long-sequence, fine-grained block grid (the regime the paper's
    larger configurations run in) where the ``nnz * block²`` element-mask
    construction is no longer trivial.  This isolates exactly the work
    :class:`LayoutGeometryCache` removes from every sparse attention call —
    the end-to-end sparse step above is dominated by the oracle exposer at
    benchmark scale, so the cache's contribution is reported separately.
    """
    from repro.sparsity.ops import LayoutGeometryCache, compute_block_geometry
    from repro.sparsity.patterns import build_default_pool
    from repro.sparsity.ops.layout import LayoutPool

    pool = LayoutPool(build_default_pool(), block_size)
    names = ["local2", "dense", "local4", "local4+global2", "local2", "dense",
             "local8+global2", "strided2+local2"]
    layout = pool.combine(names, seq)

    compute_s = _best_of(lambda: compute_block_geometry(layout, seq), repeats)
    cache = LayoutGeometryCache()
    cache.lookup(layout, seq)
    lookup_s = _best_of(lambda: cache.lookup(layout, seq), repeats)
    return {
        "seq": float(seq),
        "block_size": float(block_size),
        "layout_nnz": float(layout.nnz),
        "compute_s": compute_s,
        "lookup_s": lookup_s,
        "speedup": compute_s / max(lookup_s, 1e-12),
    }


def pre_pr_block_sparse_attention(q: Tensor, k: Tensor, v: Tensor, layout,
                                  scale: Optional[float] = None,
                                  cache: Optional[LayoutGeometryCache] = None,
                                  streaming: Optional[bool] = None) -> Tensor:
    """The PR-1 block-sparse chain, kept verbatim as the fusion baseline.

    ``streaming`` exists only so the engine's call signature (which always
    forwards the toggle) keeps matching; this rollback predates streaming
    and only ever runs with it off.

    Identical math and identical geometry handling to the current fused op,
    but every softmax stage materialises its own temporary (``np.where``
    masked fill, exp, mask multiply, divide) and the backward rebuilds dS
    out of fresh buffers — exactly what the in-place fusion pass removed.
    ``sparse_chain.speedup`` in the report is measured against this.
    """
    if streaming:
        raise ValueError("pre-PR baseline has no streaming path")
    bs = layout.block_size
    batch, n_heads, seq_len, head_dim = q.shape
    scale = scale if scale is not None else 1.0 / np.sqrt(head_dim)
    neg_inf = np.float32(-1e9)

    q_pad = _blockify(_pad_to_blocks(q.data, bs, axis=2), bs)
    k_pad = _blockify(_pad_to_blocks(k.data, bs, axis=2), bs)
    v_pad = _blockify(_pad_to_blocks(v.data, bs, axis=2), bs)
    padded_len = layout.n_blocks * bs

    heads, rows, cols = layout.heads, layout.rows, layout.cols
    starts = layout.row_segment_starts
    geom = (cache.lookup(layout, seq_len) if cache is not None
            else compute_block_geometry(layout, seq_len))
    seg_ids, seg_heads, seg_rows = geom.seg_ids, geom.seg_heads, geom.seg_rows

    q_blk = q_pad[:, heads, rows]
    k_blk = k_pad[:, heads, cols]
    v_blk = v_pad[:, heads, cols]

    scores = np.matmul(q_blk, np.swapaxes(k_blk, -1, -2)) * scale
    allowed = geom.element_mask
    scores = np.where(allowed[None], scores, neg_inf)

    block_max = scores.max(axis=-1)
    seg_max = np.maximum.reduceat(block_max, starts, axis=1)
    row_max = seg_max[:, seg_ids]
    exp = np.exp(scores - row_max[..., None]) * allowed[None]
    block_sum = exp.sum(axis=-1)
    seg_sum = np.add.reduceat(block_sum, starts, axis=1)
    row_sum = seg_sum[:, seg_ids]
    row_sum = np.where(row_sum == 0.0, 1.0, row_sum)
    probs = exp / row_sum[..., None]

    ctx_blk = np.matmul(probs, v_blk)
    ctx_seg = np.add.reduceat(ctx_blk, starts, axis=1)
    out = np.zeros((batch, n_heads, layout.n_blocks, bs, head_dim), dtype=q.data.dtype)
    out[:, seg_heads, seg_rows] = ctx_seg
    out = out.reshape(batch, n_heads, padded_len, head_dim)[:, :, :seq_len]

    n_blocks = layout.n_blocks
    col_order, col_starts = geom.col_order, geom.col_starts
    col_seg_heads, col_seg_cols = geom.col_seg_heads, geom.col_seg_cols

    def _scatter_to_cols(contrib: np.ndarray) -> np.ndarray:
        contrib_sorted = contrib[:, col_order]
        seg = np.add.reduceat(contrib_sorted, col_starts, axis=1)
        out_blocks = np.zeros((batch, n_heads, n_blocks, bs, head_dim), dtype=np.float32)
        out_blocks[:, col_seg_heads, col_seg_cols] = seg
        return out_blocks.reshape(batch, n_heads, padded_len, head_dim)

    def backward(grad_out: np.ndarray):
        grad_out_pad = _blockify(_pad_to_blocks(grad_out, bs, axis=2), bs)
        dout_blk = grad_out_pad[:, heads, rows]
        dv = _scatter_to_cols(np.matmul(np.swapaxes(probs, -1, -2), dout_blk))
        dP = np.matmul(dout_blk, np.swapaxes(v_blk, -1, -2))
        inner_blk = (dP * probs).sum(axis=-1)
        inner_seg = np.add.reduceat(inner_blk, starts, axis=1)
        inner_row = inner_seg[:, seg_ids]
        dS = probs * (dP - inner_row[..., None])
        dS *= scale
        dq_contrib = np.matmul(dS, k_blk)
        dq_seg = np.add.reduceat(dq_contrib, starts, axis=1)
        dq = np.zeros((batch, n_heads, n_blocks, bs, head_dim), dtype=np.float32)
        dq[:, seg_heads, seg_rows] = dq_seg
        dq = dq.reshape(batch, n_heads, padded_len, head_dim)
        dk = _scatter_to_cols(np.matmul(np.swapaxes(dS, -1, -2), q_blk))
        return (dq[:, :, :seq_len], dk[:, :, :seq_len], dv[:, :, :seq_len])

    return custom_op(out, (q, k, v), backward)


def _chain_layout(seq: int, block_size: int = BLOCK_SIZE, patterns=None,
                  heads: Optional[int] = None):
    """Mixed predicted-pattern layout used by the chain/crossover benches.

    ``heads`` cycles/truncates the pattern list to the requested head count
    (the smoke tests run miniature configurations).
    """
    patterns = list(patterns or CHAIN_PATTERNS)
    if heads is not None:
        patterns = [patterns[i % len(patterns)] for i in range(heads)]
    pool = LayoutPool(build_default_pool(), block_size)
    return pool.combine(patterns, seq)


def bench_sparse_chain(repeats: int = 20, batch: int = BATCH, seq: int = SEQ,
                       heads: int = CHAIN_HEADS, dim: int = CHAIN_DIM,
                       block_size: int = BLOCK_SIZE) -> Dict[str, float]:
    """Fused in-place sparse chain vs. the pre-PR chain, forward + backward.

    Both run with warm cached geometry, so the measured gap is purely the
    buffer-reuse fusion of the SDD → masked-softmax → DSD chain.  The
    acceptance bar is ``speedup >= 1.3``.
    """
    layout = _chain_layout(seq, block_size, heads=heads)
    rng = np.random.default_rng(0)
    q, k, v = [rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
               for _ in range(3)]
    cache = LayoutGeometryCache()
    cache.lookup(layout, seq)

    def run(op) -> Callable[[], None]:
        def once() -> None:
            qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
            out = op(qt, kt, vt, layout, cache=cache)
            out.backward(np.ones_like(out.data))
        once()  # warm-up
        return once

    fused_s = _best_of(run(block_sparse_attention), repeats)
    pre_pr_s = _best_of(run(pre_pr_block_sparse_attention), repeats)
    return {
        "layout_nnz": float(layout.nnz),
        "fused_s": fused_s,
        "pre_pr_s": pre_pr_s,
        "speedup": pre_pr_s / fused_s,
    }


CROSSOVER_PATTERNS = ["local2", "local2+global1", "local4", "local2",
                      "local4+global1", "local2", "local2+global1", "local4"]


def bench_crossover(repeats: int = 10, batch: int = 1, seq: int = 512,
                    heads: int = CHAIN_HEADS, dim: int = CHAIN_DIM,
                    block_size: int = BLOCK_SIZE) -> Dict[str, float]:
    """Sparse-vs-dense attention crossover at long sequence length.

    Compares the fused dense core (causal mask) against the fused sparse
    chain, forward + backward, at seq 512 under a local-window-heavy layout
    — the pattern mix long sequences actually predict (bounded local
    windows plus attention-sink globals; the block count per query row stays
    constant as the sequence grows, unlike the ``dense``-head mix the
    short-sequence chain bench uses).  ``sparse_vs_dense > 1`` means block
    sparsity beats the fused dense kernel — the crossover the paper's
    headline mechanism depends on, re-established after PR 1 halved the
    dense step.
    """
    from repro.nn.attention import causal_mask

    layout = _chain_layout(seq, block_size, CROSSOVER_PATTERNS, heads=heads)
    rng = np.random.default_rng(0)
    q, k, v = [rng.normal(size=(batch, heads, seq, dim)).astype(np.float32)
               for _ in range(3)]
    cache = LayoutGeometryCache()
    cache.lookup(layout, seq)
    mask = causal_mask(seq)

    def sparse_once() -> None:
        qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        out = block_sparse_attention(qt, kt, vt, layout, cache=cache)
        out.backward(np.ones_like(out.data))

    def dense_once() -> None:
        qt, kt, vt = [Tensor(a, requires_grad=True) for a in (q, k, v)]
        out = fused.scaled_dot_product_attention(qt, kt, vt, mask)
        out.backward(np.ones_like(out.data))

    sparse_once(); dense_once()  # warm-up
    sparse_s = _best_of(sparse_once, repeats)
    dense_s = _best_of(dense_once, repeats)
    return {
        "seq": float(seq),
        "layout_sparsity": float(layout.sparsity()),
        "dense_s": dense_s,
        "sparse_s": sparse_s,
        "sparse_vs_dense": dense_s / sparse_s,
    }


def bench_optimizer_step(repeats: int = 20, n_params: int = 200,
                         param_shape=(768,)) -> Dict[str, float]:
    """Flattened single-buffer Adam vs. the per-parameter Python loop.

    The population mirrors the PEFT regime the optimizer routing targets —
    many small trainable tensors (BitFit biases / prompt rows at GPT-2-small
    width) — where the per-parameter NumPy call overhead dominates the loop.
    """
    from repro.nn.module import Parameter

    rng = np.random.default_rng(0)

    def make_params():
        return [Parameter(rng.normal(size=param_shape).astype(np.float32))
                for _ in range(n_params)]

    def loop_step(optimizer) -> None:
        """Force the per-parameter fallback path (the pre-flattening cost)."""
        optimizer.step_count += 1
        t = optimizer.step_count
        bias1 = 1.0 - optimizer.beta1 ** t
        bias2 = 1.0 - optimizer.beta2 ** t
        for index, param in enumerate(optimizer.params):
            optimizer._step_param(index, param, bias1, bias2)

    results: Dict[str, float] = {}
    for mode in ("flat", "loop"):
        params = make_params()
        optimizer = Adam(params, lr=1e-4, weight_decay=0.01)
        for p in params:
            p.grad = rng.normal(size=param_shape).astype(np.float32)
        step = (optimizer.step if mode == "flat"
                else lambda: loop_step(optimizer))
        step()  # warm-up
        results[f"{mode}_s"] = _best_of(step, repeats)
    results["n_elements"] = float(n_params * int(np.prod(param_shape)))
    results["speedup"] = results["loop_s"] / results["flat_s"]
    return results


def bench_optimizer_regimes(repeats: int = 10,
                            sizes=(256, 1024, 4096, 16384, 65536),
                            total_elements: int = 2_000_000) -> Dict:
    """Flat vs. loop Adam per parameter-size regime (threshold validation).

    Every regime holds the total element count fixed and varies the
    per-parameter size, so the sweep isolates the call-overhead-vs-memory-
    bandwidth trade :data:`FLAT_MEAN_SIZE_THRESHOLD` encodes.  Both paths
    are forced via the module constant (restored afterwards); the reported
    ``threshold_validated`` is True when flat wins strictly below the
    threshold and does not win above it.
    """
    import repro.optim.adam as adam_module
    from repro.nn.module import Parameter

    rng = np.random.default_rng(0)
    saved = adam_module.FLAT_MEAN_SIZE_THRESHOLD
    regimes = []
    try:
        for size in sizes:
            n_params = max(2, total_elements // int(size))
            timings: Dict[str, float] = {}
            for mode in ("flat", "loop"):
                adam_module.FLAT_MEAN_SIZE_THRESHOLD = (
                    float("inf") if mode == "flat" else -1.0)
                params = [Parameter(rng.normal(size=(int(size),)).astype(np.float32))
                          for _ in range(n_params)]
                optimizer = Adam(params, lr=1e-4, weight_decay=0.01)
                for p in params:
                    p.grad = rng.normal(size=(int(size),)).astype(np.float32)
                optimizer.step()  # warm-up
                timings[f"{mode}_s"] = _best_of(optimizer.step, repeats)
            regimes.append({"param_size": float(size), "n_params": float(n_params),
                            **timings,
                            "flat_speedup": timings["loop_s"] / timings["flat_s"]})
    finally:
        adam_module.FLAT_MEAN_SIZE_THRESHOLD = saved
    threshold = float(saved)
    below = [r for r in regimes if r["param_size"] <= threshold]
    above = [r for r in regimes if r["param_size"] > threshold]
    validated = (all(r["flat_speedup"] >= 1.0 for r in below)
                 and all(r["flat_speedup"] <= 1.15 for r in above))
    return {"threshold_elements": threshold, "regimes": regimes,
            "threshold_validated": bool(validated)}


def _eval_layout_stats(engine, model, ids, eval_seq):
    """Oracle / calibrated / uncalibrated layout sparsity on one fresh batch."""
    from repro.sparsity.predictor import collect_layer_data

    layers = collect_layer_data(model, [ids])
    oracle_sp, cal_sp, uncal_sp, recall = [], [], [], []
    for layer_index, predictor in enumerate(engine.attention_predictors):
        merged = layers[layer_index].merged()
        _, names = engine.attention_exposer.head_block_masks(
            merged["attention_probs"])
        oracle_layout = engine.layout_pool.combine(list(names), eval_seq)
        oracle_sp.append(oracle_layout.sparsity())

        cal_names = predictor.predict_patterns(merged["attention_inputs"])
        cal_layout = engine.layout_pool.combine(cal_names, eval_seq)
        cal_sp.append(cal_layout.sparsity())

        oracle_masks = np.stack([oracle_layout.head_mask(h)
                                 for h in range(oracle_layout.n_heads)])
        cal_masks = np.stack([cal_layout.head_mask(h)
                              for h in range(cal_layout.n_heads)])
        recall.append(float((oracle_masks & cal_masks).sum() / oracle_masks.sum()))

        saved_calibration = predictor.calibration
        predictor.calibration = None
        try:
            uncal_names = predictor.predict_patterns(merged["attention_inputs"])
        finally:
            predictor.calibration = saved_calibration
        uncal_sp.append(engine.layout_pool.combine(uncal_names, eval_seq).sparsity())
    return (float(np.mean(oracle_sp)), float(np.mean(cal_sp)),
            float(np.mean(uncal_sp)), float(np.mean(recall)))


def bench_predicted_quality(batch: int = BATCH, seq: int = PREDICTED_SEQ,
                            model_name: str = SPARSE_MODEL,
                            predictor_epochs: int = 30,
                            lengths=(128, 256, 512),
                            eval_batches: int = 3) -> Dict:
    """Predicted-vs-oracle block-sparsity gap across the calibration grid.

    Probes are trained on the calibration batches and then calibrated on the
    length grid (per-head threshold fitting + snap-bar scan, the default
    engine path).  Evaluation uses *fresh* random batches at every grid
    length: per layer, the oracle's snapped layouts are compared against the
    calibrated predicted layouts and against the uncalibrated fixed-
    threshold layouts.  ``recall`` is the fraction of oracle-active blocks
    the calibrated layout retains (the accuracy side of the trade — density
    matching must not be bought by dropping the blocks the oracle keeps).

    The acceptance bar is ``gap <= 0.05`` at the longest grid length
    (ISSUE 4; the uncalibrated gap at the same point was ~0.10-0.12).
    """
    lengths = tuple(int(l) for l in lengths)
    result: Dict = {"lengths": [float(l) for l in lengths]}
    model = build_model(model_name, seed=0)
    rng = np.random.default_rng(0)
    calib = rng.integers(0, model.config.vocab_size, size=(2, seq))
    config = LongExposureConfig(block_size=BLOCK_SIZE, seed=0,
                                predictor_epochs=predictor_epochs,
                                calibration_lengths=lengths)
    engine = LongExposure(config)
    engine.prepare(model, [calib])
    result["calibration_gap"] = engine.calibration_gap().get("attention", 0.0)
    snap = engine.attention_calibrations[0].snap_coverage \
        if engine.attention_calibrations else 0.0
    result["snap_coverage"] = float(snap)

    per_length: Dict[str, Dict[str, float]] = {}
    for eval_seq in lengths:
        stats = np.array([
            _eval_layout_stats(
                engine, model,
                rng.integers(0, model.config.vocab_size, size=(batch, eval_seq)),
                eval_seq)
            for _ in range(max(1, eval_batches))])
        oracle_sp, cal_sp, uncal_sp, recall = stats.mean(axis=0)
        per_length[str(eval_seq)] = {
            "oracle_sparsity": oracle_sp,
            "calibrated_sparsity": cal_sp,
            "calibrated_gap": abs(oracle_sp - cal_sp),
            "uncalibrated_sparsity": uncal_sp,
            "uncalibrated_gap": abs(oracle_sp - uncal_sp),
            "oracle_recall": recall,
        }
    result["per_length"] = per_length
    longest = per_length[str(max(lengths))]
    result["gap"] = longest["calibrated_gap"]
    result["uncalibrated_gap"] = longest["uncalibrated_gap"]
    result["gap_reduction"] = (longest["uncalibrated_gap"]
                               / max(longest["calibrated_gap"], 1e-9))
    return result


def bench_embedding_scatter(repeats: int = 20, vocab: int = 50257,
                            dim: int = 64, n_tokens: int = 8192
                            ) -> Dict[str, float]:
    """Sort/``np.add.reduceat`` embedding-backward scatter vs. ``np.add.at``.

    Uses a Zipf-distributed token stream (the duplicate structure of real
    text) at GPT-2 vocabulary scale.
    """
    rng = np.random.default_rng(0)
    idx = np.minimum(rng.zipf(1.3, size=n_tokens) - 1, vocab - 1).astype(np.int64)
    upd = rng.normal(size=(n_tokens, dim)).astype(np.float32)
    buf = np.zeros((vocab, dim), np.float32)

    add_at_s = _best_of(lambda: np.add.at(buf, idx, upd), repeats)
    scatter_s = _best_of(lambda: scatter_add_rows(buf, idx, upd), repeats)
    return {
        "vocab": float(vocab),
        "n_tokens": float(n_tokens),
        "add_at_s": add_at_s,
        "scatter_s": scatter_s,
        "speedup": add_at_s / scatter_s,
    }


def pre_pr_block_reduce(exposer, probs: np.ndarray) -> np.ndarray:
    """The PR-2 6-D reshape-sum block reduction, kept verbatim as the baseline.

    The current :meth:`AttentionExposer.block_reduce` runs two per-axis
    ``np.add.reduceat`` stages instead; ``prediction_overhead.block_reduce``
    measures the gap and the parity tests lock exact agreement.
    """
    probs = np.asarray(probs)
    if probs.ndim == 3:
        probs = probs[None]
    batch, heads, seq, _ = probs.shape
    bs = exposer.block_size
    n_blocks = block_count(seq, bs)
    padded = n_blocks * bs
    if padded != seq:
        pad = padded - seq
        probs = np.pad(probs, ((0, 0), (0, 0), (0, pad), (0, pad)))
    reduced = probs.reshape(batch, heads, n_blocks, bs, n_blocks, bs).sum(axis=(0, 3, 5))
    reduced = reduced * causal_block_mask(n_blocks)[None]
    return reduced


def pre_pr_predict_patterns(predictor, x: np.ndarray) -> list:
    """The PR-2 attention probe, kept verbatim as the baseline.

    Per-head einsum pairs for Q̂/K̂, a materialised sigmoid, and the scalar
    per-head pattern matcher (``PatternPool.match`` is still that scalar
    matcher, so it serves as the loop baseline directly).
    """
    x = np.asarray(x)
    if x.ndim == 2:
        x = x[None]
    batch, seq, dim = x.shape
    n_blocks = block_count(seq, predictor.block_size)
    centers = np.arange(n_blocks) * predictor.block_size + predictor.block_size // 2
    idx = np.minimum(centers, seq - 1)
    x_ds = x[:, idx, :]
    q_hat = np.einsum("bnd,hdr->bhnr", x_ds, predictor.w_q.data, optimize=True)
    k_hat = np.einsum("bnd,hdr->bhnr", x_ds, predictor.w_k.data, optimize=True)
    scores = np.matmul(q_hat, np.swapaxes(k_hat, -1, -2)) / np.sqrt(predictor.rank)
    probs = 1.0 / (1.0 + np.exp(-scores))
    mass = np.clip(probs - 0.5, 0.0, None).mean(axis=0)
    mass = mass * causal_block_mask(n_blocks)[None]
    return [predictor.pattern_pool.match(mass[h], predictor.coverage)
            for h in range(mass.shape[0])]


def bench_predicted_step(repeats: int = 3, batch: int = BATCH,
                         seq: int = PREDICTED_SEQ,
                         model_name: str = SPARSE_MODEL,
                         interval: int = PREDICT_INTERVAL,
                         predictor_epochs: int = 30,
                         drift_windows: int = 3) -> Dict[str, float]:
    """End-to-end *predicted* sparse fine-tune step vs. oracle and vs. interval.

    The configuration is the paper's production regime — LoRA fine-tuning at
    long sequence length — where the oracle's per-step mask derivation (a
    dense ``(batch, heads, seq, seq)`` QK^T plus block reduction per layer)
    dominates the step and the low-rank probes are the designed replacement.
    Predictors are trained at the same sequence length (the probes are grid-
    sensitive: training at a shorter length predicts near-dense patterns).

    Four interleaved modes, all on the same prepared engine, each timed as a
    window of ``interval`` consecutive steps so a scheduled mode's refresh +
    reuse mix is averaged fairly (reported seconds are per *step*):

    * ``oracle`` — exact exposer masks re-derived every step (the PR-2
      measured path);
    * ``oracle_intervalK`` — exact masks re-derived every ``interval`` steps
      and reused in between (scheduler applied to the oracle);
    * ``interval1`` — low-rank probes every step (``predict_interval=1``);
    * ``intervalK`` — probes every ``interval`` steps, layouts reused.

    Acceptance bars: ``speedup_vs_oracle >= 1.3`` and both
    ``interval_speedup`` values > 1.  After timing, a short run over *fresh
    random batches* under ``intervalK`` reports the mask drift the reuse
    incurs (``attention_mask_drift`` / ``mlp_block_drift``).
    """
    from repro.peft import apply_lora

    result: Dict[str, float] = {}
    model = build_model(model_name, seed=0)
    rng = np.random.default_rng(0)
    calib = rng.integers(0, model.config.vocab_size, size=(2, seq))
    ids = rng.integers(0, model.config.vocab_size, size=(batch, seq))
    config = LongExposureConfig(block_size=BLOCK_SIZE, seed=0,
                                predictor_epochs=predictor_epochs)
    engine = LongExposure(config)
    engine.prepare(model, [calib])
    apply_lora(model)
    engine.install(model)
    saved_interval = engine.config.predict_interval
    try:
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        base_step = _train_step_fn(model, ids, optimizer)
        steps_per_window = max(1, interval)

        def window() -> None:
            for _ in range(steps_per_window):
                engine.advance_step()
                base_step()

        modes = ("oracle", "oracle_intervalK", "interval1", "intervalK")

        def enter(mode: str) -> None:
            engine.config.oracle_mode = mode.startswith("oracle")
            engine.config.predict_interval = (
                interval if mode.endswith("intervalK") else 1)
            engine.reset_schedule()

        best = {mode: float("inf") for mode in modes}
        for mode in modes:   # warm-up (predictor caches, geometry, layouts)
            enter(mode)
            window()
        # Interleave the modes so machine-load drift hits all equally.
        for _ in range(max(1, repeats)):
            for mode in modes:
                enter(mode)
                start = time.perf_counter()
                window()
                best[mode] = min(best[mode], time.perf_counter() - start)
        for mode in modes:
            result[f"{mode}_s"] = best[mode] / steps_per_window

        # Prediction overhead per step under each probe schedule (the wall
        # clock above is dominated by the kernels, so the ~K-fold drop in
        # mask-derivation cost is reported directly from the engine stats).
        for mode in ("interval1", "intervalK"):
            enter(mode)
            engine.stats.reset()
            window()
            result[f"{mode}_prediction_s"] = (
                engine.stats.prediction_seconds / steps_per_window)
        result["prediction_overhead_reduction"] = (
            result["interval1_prediction_s"]
            / max(result["intervalK_prediction_s"], 1e-12))

        # Mask drift under reuse, on genuinely drifting inputs: alternate the
        # uniform-random stream with a low-entropy repeated-token stream so
        # the attention landscape actually moves between refreshes (adjacent
        # uniform batches are statistically identical and well-trained probes
        # rightly predict the same patterns for them).
        enter("intervalK")
        engine.stats.reset()
        degenerate = np.tile(
            rng.integers(0, model.config.vocab_size, size=(batch, 8)),
            (1, seq // 8 + 1))[:, :seq]
        for step in range(max(1, drift_windows) * steps_per_window):
            engine.advance_step()
            if (step // steps_per_window) % 2 == 1:
                fresh = degenerate
            else:
                fresh = rng.integers(0, model.config.vocab_size, size=(batch, seq))
            _train_step_fn(model, fresh, optimizer)()
        result["attention_mask_drift"] = engine.stats.mean_attention_drift()
        result["mlp_block_drift"] = engine.stats.mean_mlp_drift()
        result["attention_reuse_rate"] = engine.stats.attention_reuse_rate()
        result["prediction_fraction"] = engine.stats.prediction_fraction()
    finally:
        engine.config.oracle_mode = False
        engine.config.predict_interval = saved_interval
        engine.uninstall(model)
    result["interval"] = float(interval)
    result["speedup_vs_oracle"] = result["oracle_s"] / result["interval1_s"]
    result["interval_speedup"] = result["interval1_s"] / result["intervalK_s"]
    result["oracle_interval_speedup"] = (
        result["oracle_s"] / result["oracle_intervalK_s"])
    return result


def pre_pr_linear(x, weight, bias=None, activation=None):
    """The PR-4 fused linear, kept verbatim as the step-capture baseline.

    Identical math to the current op, but every buffer is freshly allocated
    (no arena seam) and the weight/bias gradients are computed even for
    frozen parameters — the dead work the PEFT-aware backward now skips.
    """
    from repro.tensor.fused import (_gelu_local_grad, _gelu_value_and_tanh)
    from repro.tensor.tensor import custom_op

    x_data = x.data
    in_features = weight.data.shape[1]
    out_features = weight.data.shape[0]
    x2d = x_data.reshape(-1, in_features)
    out = np.matmul(x2d, weight.data.T)
    if bias is not None:
        out += bias.data
    relu_mask = gelu_pre = gelu_tanh = act_out = None
    if activation is None or activation == "none":
        pass
    elif activation == "relu":
        relu_mask = out > 0
        np.multiply(out, relu_mask, out=out)
    elif activation == "gelu":
        gelu_pre = out
        out, gelu_tanh = _gelu_value_and_tanh(gelu_pre)
    elif activation == "tanh":
        out = np.tanh(out, out=out)
        act_out = out
    elif activation == "sigmoid":
        np.negative(out, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.reciprocal(out, out=out)
        act_out = out
    else:
        raise ValueError(f"unsupported fused activation {activation!r}")
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad):
        grad2d = grad.reshape(-1, out_features)
        if relu_mask is not None:
            grad2d = grad2d * relu_mask
        elif gelu_pre is not None:
            grad2d = grad2d * _gelu_local_grad(gelu_pre, gelu_tanh)
        elif act_out is not None:
            if activation == "tanh":
                grad2d = grad2d * (1.0 - act_out * act_out)
            else:
                grad2d = grad2d * (act_out * (1.0 - act_out))
        grad_x = np.matmul(grad2d, weight.data).reshape(x_data.shape)
        grad_w = np.matmul(grad2d.T, x2d)
        if bias is None:
            return grad_x, grad_w
        return grad_x, grad_w, grad2d.sum(axis=0)

    return custom_op(out.reshape(*x_data.shape[:-1], out_features),
                     parents, backward)


def pre_pr_layer_norm(x, weight, bias, eps: float = 1e-5):
    """The PR-4 fused layer norm (unconditional affine grads), verbatim."""
    from repro.tensor.tensor import custom_op

    mean = x.data.mean(axis=-1, keepdims=True)
    normalized = x.data - mean
    var = np.square(normalized).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps, out=var)
    normalized *= inv_std
    out = normalized * weight.data
    out += bias.data
    dim = x.data.shape[-1]

    def backward(grad):
        grad_weight = (grad * normalized).reshape(-1, dim).sum(axis=0)
        grad_bias = grad.reshape(-1, dim).sum(axis=0)
        grad_norm = grad * weight.data
        grad_x = grad_norm - grad_norm.mean(axis=-1, keepdims=True)
        grad_x -= normalized * (grad_norm * normalized).mean(axis=-1, keepdims=True)
        grad_x *= inv_std
        return grad_x, grad_weight, grad_bias

    return custom_op(out, (x, weight, bias), backward)


def pre_pr_neuron_sparse_linear_pair(x, fc1_weight, fc1_bias, fc2_weight,
                                     fc2_bias, active_neurons,
                                     activation="relu", cache=None):
    """The PR-4 neuron-sparse MLP op (full frozen-weight grads), verbatim."""
    from repro.tensor.tensor import custom_op

    active = np.asarray(active_neurons, dtype=np.int64)
    x_data = x.data
    batch_shape = x_data.shape[:-1]
    d_model = x_data.shape[-1]
    if cache is not None:
        fc1_active, fc2_active_t = cache.gather(active)
    else:
        fc1_active = fc1_weight.data[active]
        fc2_active_t = fc2_weight.data[:, active].T
    b1_active = fc1_bias.data[active]
    x2d = x_data.reshape(-1, d_model)
    pre = x2d @ fc1_active.T + b1_active
    act_mask = pre > 0
    hidden = pre * act_mask
    out2d = hidden @ fc2_active_t + fc2_bias.data
    out = out2d.reshape(*batch_shape, d_model)

    def backward(grad_out):
        grad2d = grad_out.reshape(-1, d_model)
        grad_fc2_bias = grad2d.sum(axis=0)
        grad_fc2_active = hidden.T @ grad2d
        grad_fc2 = np.zeros_like(fc2_weight.data)
        grad_fc2[:, active] = grad_fc2_active.T
        grad_hidden = (grad2d @ fc2_active_t.T) * act_mask
        grad_fc1_active = grad_hidden.T @ x2d
        grad_fc1 = np.zeros_like(fc1_weight.data)
        grad_fc1[active] = grad_fc1_active
        grad_b1 = np.zeros_like(fc1_bias.data)
        grad_b1[active] = grad_hidden.sum(axis=0)
        grad_x = (grad_hidden @ fc1_active).reshape(x_data.shape)
        return grad_x, grad_fc1, grad_b1, grad_fc2, grad_fc2_bias

    return custom_op(out, (x, fc1_weight, fc1_bias, fc2_weight, fc2_bias),
                     backward)


@contextlib.contextmanager
def _pre_pr_peft_backward():
    """Roll the PEFT-regime backward optimisations back to their PR-4 forms.

    Restores (verbatim) the unconditional-gradient fused linear and layer
    norm and the full-gradient neuron-sparse MLP op.  The block-sparse chain
    is *not* rolled back (its PR-5 deltas — ``np.take`` gathers, uncovered-
    slot zeroing — are small), so the measured ``pre_pr`` step is a
    conservative stand-in for the PR-4 path: the reported speedup against it
    is a lower bound.
    """
    import repro.sparsity.engine as engine_module

    saved = (fused.linear, fused.layer_norm,
             engine_module.neuron_sparse_linear_pair)
    fused.linear = pre_pr_linear
    fused.layer_norm = pre_pr_layer_norm
    engine_module.neuron_sparse_linear_pair = pre_pr_neuron_sparse_linear_pair
    try:
        yield
    finally:
        (fused.linear, fused.layer_norm,
         engine_module.neuron_sparse_linear_pair) = saved


def bench_step_capture(repeats: int = 4, batch: int = BATCH, seq: int = SEQ,
                       predicted_seq: int = PREDICTED_SEQ,
                       predictor_epochs: int = 30,
                       interval: int = PREDICT_INTERVAL,
                       dense_model: str = DENSE_MODEL,
                       sparse_model: str = SPARSE_MODEL) -> Dict:
    """Captured vs. uncaptured training steps (buffer arena + planned replay).

    Three configurations, each driven through :class:`FineTuner` so both
    modes share the trainer/profiler overhead and differ only in capture:

    * ``dense`` — full fine-tuning of the dense model (batch x seq);
    * ``oracle`` — the oracle-sparse step (exact exposer masks per step);
    * ``predicted`` — the production path: LoRA + trained probes at
      ``predicted_seq`` with ``predict_interval=interval``.

    Reported per mode: best-of per-step seconds, the speedup, the captured
    steady-state allocations per step (arena misses — must be ~0) and the
    arena footprint.  The predicted configuration additionally measures a
    ``pre_pr`` mode — the uncaptured step with the PEFT-regime backward
    rolled back to its PR-4 form (see :func:`_pre_pr_peft_backward`) — since
    this PR sped the *uncaptured* path up as well (frozen-parameter gradient
    skips), which the in-run ``speedup`` alone would hide.  A ``recapture``
    probe then feeds the captured dense tuner one batch at half the sequence
    length: exactly one re-capture must occur and allocations must return to
    zero on the following steps.

    Acceptance bars: ``predicted.pre_pr_speedup >= 1.15`` (captured step vs
    the PR-4-form path — the ISSUE 5 criterion; conservative, since the
    rollback keeps this PR's block-sparse-chain deltas), ``predicted.speedup
    > 1`` in-run, and ``predicted.captured_allocs_per_step == 0``.
    """
    from repro.peft import apply_lora
    from repro.runtime import (AttentionConfig, CaptureConfig, FineTuner,
                               StepCapture, TrainingConfig)

    def dense_factory(captured: bool):
        model = build_model(dense_model, seed=0)
        ids = np.random.default_rng(0).integers(
            0, model.config.vocab_size, size=(batch, seq))
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        tuner = FineTuner(model, TrainingConfig(), optimizer=optimizer,
                          capture=StepCapture() if captured else None)
        return tuner, ids

    def oracle_factory(captured: bool):
        model = build_model(sparse_model, seed=0)
        ids = np.random.default_rng(0).integers(
            0, model.config.vocab_size, size=(batch, seq))
        engine = LongExposure(LongExposureConfig(
            block_size=BLOCK_SIZE, oracle_mode=True, seed=0))
        engine.prepare(model, [ids])
        engine.install(model)
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        tuner = FineTuner(model, TrainingConfig(), optimizer=optimizer,
                          engine=engine,
                          capture=StepCapture() if captured else None)
        return tuner, ids

    def predicted_factory(captured: bool):
        model = build_model(sparse_model, seed=0)
        rng = np.random.default_rng(0)
        calib = rng.integers(0, model.config.vocab_size, size=(2, predicted_seq))
        ids = rng.integers(0, model.config.vocab_size,
                           size=(batch, predicted_seq))
        engine = LongExposure(LongExposureConfig(
            block_size=BLOCK_SIZE, seed=0, predictor_epochs=predictor_epochs,
            predict_interval=interval))
        engine.prepare(model, [calib])
        apply_lora(model)
        engine.install(model)
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        tuner = FineTuner(model, TrainingConfig(), optimizer=optimizer,
                          engine=engine,
                          capture=StepCapture() if captured else None)
        return tuner, ids

    def measure(factory, window: int, include_pre_pr: bool = False
                ) -> Dict[str, float]:
        pairs = {captured: factory(captured) for captured in (False, True)}
        if include_pre_pr:
            with _pre_pr_peft_backward():
                pairs["pre_pr"] = factory(False)
        # Warm-up covers the capture lifecycle (warm-up + capture steps) and
        # one-time caches; then interleaved best-of windows.
        contexts = {mode: (_pre_pr_peft_backward if mode == "pre_pr"
                           else contextlib.nullcontext)
                    for mode in pairs}
        for mode, (tuner, ids) in pairs.items():
            with contexts[mode]():
                for _ in range(max(3, window)):
                    tuner.step(ids)
        best = {mode: float("inf") for mode in pairs}
        for _ in range(max(1, repeats)):
            for mode, (tuner, ids) in pairs.items():
                with contexts[mode]():
                    start = time.perf_counter()
                    for _ in range(window):
                        tuner.step(ids)
                best[mode] = min(best[mode],
                                 (time.perf_counter() - start) / window)
        capture = pairs[True][0].capture
        row = {
            "uncaptured_s": best[False],
            "captured_s": best[True],
            "speedup": best[False] / best[True],
            "captured_allocs_per_step": float(capture.last_step_allocations),
            "arena_mb": capture.arena.bytes_held / 1024 ** 2,
            "replay_steps": float(capture.replay_steps),
            "fallbacks": float(capture.fallbacks),
        }
        if include_pre_pr:
            row["pre_pr_s"] = best["pre_pr"]
            row["pre_pr_speedup"] = best["pre_pr"] / best[True]
        for tuner, _ in pairs.values():
            if tuner.engine is not None:
                tuner.engine.uninstall(tuner.model)
        return row

    report: Dict = {
        "dense": measure(dense_factory, window=2),
        "oracle": measure(oracle_factory, window=2),
        "predicted": measure(predicted_factory, window=max(1, interval),
                             include_pre_pr=True),
    }

    # Shape-change invalidation: one batch at half the length must trigger
    # exactly one re-capture, after which allocations return to zero.
    tuner, ids = dense_factory(True)
    for _ in range(4):
        tuner.step(ids)
    capture = tuner.capture
    recaptures_before = capture.recaptures
    short = ids[:, :max(2, seq // 2)]
    tuner.step(short)                      # re-capture at the new shape
    tuner.step(short)                      # first replay at the new shape
    tuner.step(short)
    report["recapture"] = {
        "recaptures": float(capture.recaptures - recaptures_before),
        "post_change_allocs_per_step": float(capture.last_step_allocations),
        "state_replay": float(capture.state == capture.REPLAY),
    }
    return report


def bench_full_step(repeats: int = 4, batch: int = BATCH,
                    predicted_seq: int = PREDICTED_SEQ,
                    predictor_epochs: int = 30,
                    interval: int = PREDICT_INTERVAL,
                    sparse_model: str = SPARSE_MODEL,
                    threads_curve=(1, 2, 4)) -> Dict:
    """Full-step compiler vs. PR-5 backward-only capture vs. interpreted.

    The configuration is the production predicted regime of
    :func:`bench_step_capture` — LoRA on the sparse model at
    ``batch x predicted_seq`` with trained probes and
    ``predict_interval=interval`` — on a fixed batch (the steady state the
    compiler targets).  Three modes, each its own tuner:

    * ``interpreted`` — no capture: graph built and re-sorted every step;
    * ``captured`` — the PR-5 :class:`StepCapture` (buffer arena + planned
      *backward* replay; the forward still builds the Python graph);
    * ``compiled_tN`` — ``compile_full_step=True`` with
      ``executor_threads=N`` for each N in ``threads_curve``: steady-state
      steps replay forward + backward + optimizer tail as one flat plan of
      kernel calls, zero graph builds.

    Every mode is timed as windows of ``interval`` consecutive steps so the
    scheduled refresh (which the compiler must sit out — it runs interpreted
    through the PR-5 replay) is averaged into the per-step figure fairly.
    The acceptance bar is ``speedup_vs_captured >= 1.15`` at threads=1;
    the threads curve documents the dependency-levelled executor (flat on a
    single-core worker — NumPy only releases the GIL inside BLAS).
    """
    from repro.peft import apply_lora
    from repro.runtime import (AttentionConfig, CaptureConfig, FineTuner,
                               StepCapture, TrainingConfig)

    def factory(compiled: bool, threads: int = 1, capture: bool = True):
        model = build_model(sparse_model, seed=0)
        rng = np.random.default_rng(0)
        calib = rng.integers(0, model.config.vocab_size,
                             size=(2, predicted_seq))
        ids = rng.integers(0, model.config.vocab_size,
                           size=(batch, predicted_seq))
        engine = LongExposure(LongExposureConfig(
            block_size=BLOCK_SIZE, seed=0, predictor_epochs=predictor_epochs,
            predict_interval=interval))
        engine.prepare(model, [calib])
        apply_lora(model)
        engine.install(model)
        optimizer = Adam(model.trainable_parameters(), lr=1e-4)
        tuner = FineTuner(model,
                          TrainingConfig(capture=CaptureConfig(
                              compile_full_step=compiled,
                              executor_threads=threads)),
                          optimizer=optimizer, engine=engine,
                          capture=StepCapture() if capture else None)
        return tuner, ids

    modes = {"interpreted": factory(False, capture=False),
             "captured": factory(False)}
    for threads in threads_curve:
        modes[f"compiled_t{threads}"] = factory(True, threads=threads)

    window = max(1, interval)
    # Warm-up spans the whole lifecycle twice over: warm-up step, capture +
    # compile, replays, one scheduled refresh.
    for tuner, ids in modes.values():
        for _ in range(2 * window + 2):
            tuner.step(ids)
    best = {mode: float("inf") for mode in modes}
    for _ in range(max(1, repeats)):
        # Interleave so machine-load drift hits all modes equally.
        for mode, (tuner, ids) in modes.items():
            start = time.perf_counter()
            for _ in range(window):
                tuner.step(ids)
            best[mode] = min(best[mode],
                             (time.perf_counter() - start) / window)

    result: Dict = {mode: best[mode] for mode in modes}
    result = {f"{mode}_s": value for mode, value in result.items()}
    result["interval"] = float(interval)
    result["threads_curve"] = {str(t): best[f"compiled_t{t}"]
                               for t in threads_curve}
    base_threads = threads_curve[0]
    compiled_s = best[f"compiled_t{base_threads}"]
    result["compiled_s"] = compiled_s
    result["speedup_vs_captured"] = best["captured"] / compiled_s
    result["speedup_vs_interpreted"] = best["interpreted"] / compiled_s
    # The threads curve only means anything with cores to spread over;
    # record the host's parallel budget so a flat curve on a single-core CI
    # worker is evidence, not an anomaly.
    result["cpu_count"] = float(os.cpu_count() or 1)
    result["single_core"] = bool((os.cpu_count() or 1) <= 1)
    capture = modes[f"compiled_t{base_threads}"][0].capture
    result["full_captures"] = float(capture.full_captures)
    result["full_replays"] = float(capture.full_replays)
    result["full_fallbacks"] = float(capture.full_fallbacks)
    result["captured_allocs_per_step"] = float(capture.last_step_allocations)
    for tuner, _ in modes.values():
        if tuner.engine is not None:
            tuner.engine.uninstall(tuner.model)
    return result


SCALING_WORKER_COUNTS = (1, 2, 4)


def _scaling_tuner(model_name: str, seed: int = 0):
    """Module-level tuner factory (picklable under the spawn start method)."""
    from repro.peft import apply_lora
    from repro.runtime import CaptureConfig, FineTuner, TrainingConfig

    model = build_model(model_name, seed=seed)
    apply_lora(model)
    return FineTuner(model, TrainingConfig(capture=CaptureConfig(enabled=True)))


def bench_scaling(worker_counts=SCALING_WORKER_COUNTS, steps: int = 6,
                  batch: int = 4, seq: int = 128,
                  model_name: str = "gpt2-tiny",
                  step_timeout_s: float = 300.0) -> Dict:
    """Data-parallel strong scaling over the shared-memory backend.

    For each worker count, a :class:`repro.runtime.DataParallelTrainer`
    trains the LoRA model over the *same* global batches (each worker steps
    its ``batch / world`` shard; gradients meet in the flat-buffer chunked
    all-reduce), and the section records steps/sec with the per-step
    communication time broken out of the phase breakdown.

    There is deliberately no speedup acceptance bar: on a single-core CI
    worker the ranks time-slice one CPU and strong scaling is physically
    impossible, so the section records ``cpu_count`` and the ``single_core``
    flag instead and leaves the speedup/efficiency columns as evidence to be
    read against them.  What the section *does* lock structurally is the
    backend itself — every worker count must complete all steps, agree on
    the cross-rank parameter digest, and unlink its segments.
    """
    from repro.runtime import DataParallelTrainer

    rng = np.random.default_rng(0)
    data = [rng.integers(0, 64, size=(batch, seq)).astype(np.int64)
            for _ in range(steps)]
    result: Dict = {
        "cpu_count": float(os.cpu_count() or 1),
        "single_core": bool((os.cpu_count() or 1) <= 1),
        "global_batch": float(batch),
        "seq": float(seq),
        "steps": float(steps),
        "model": model_name,
        "workers": {},
    }
    base_steps_per_s = None
    for world in worker_counts:
        if batch % world:
            continue                      # shard must divide the global batch
        factory = functools.partial(_scaling_tuner, model_name)
        with DataParallelTrainer(factory, workers=world,
                                 step_timeout_s=step_timeout_s) as trainer:
            report = trainer.train(data)
        steps_per_s = report.steps_per_second()
        mean = report.mean_timings()
        entry = {
            "steps_per_s": steps_per_s,
            "step_wall_ms": (1000.0 / steps_per_s
                             if steps_per_s > 0 else float("inf")),
            "comm_ms_per_step": report.mean_comm_ms(),
            "forward_ms": mean.forward * 1000.0,
            "backward_ms": mean.backward * 1000.0,
            "optimizer_ms": mean.optimizer * 1000.0,
            "param_digest": report.param_digest,
        }
        if base_steps_per_s is None:
            base_steps_per_s = steps_per_s
        entry["speedup_vs_1"] = steps_per_s / base_steps_per_s
        entry["efficiency"] = entry["speedup_vs_1"] / world
        result["workers"][str(world)] = entry
    return result


LONG_CONTEXT_LENGTHS = (512, 1024, 2048, 4096)
LONG_CONTEXT_TILE = 128
LONG_CONTEXT_PATTERNS = ["local4+global2", "local2+global1"]


def bench_long_context(lengths=LONG_CONTEXT_LENGTHS, batch: int = 1,
                       tile: int = LONG_CONTEXT_TILE,
                       repeats: int = 1) -> Dict:
    """Long-context LoRA step: ms/token and the O(seq^2) memory wall.

    For each sequence length, a one-layer nano model (dim 32, 2 heads — at
    these lengths the attention buffers dwarf weights and activations)
    takes LoRA steps three ways:

    * ``materializing`` — dense SDPA holding the full ``(batch, heads,
      seq, seq)`` probability matrix for the backward;
    * ``streaming`` — the tiled online-softmax kernel: ``O(seq * tile)``
      scratch, logsumexp-recompute backward;
    * ``block_sparse_streaming`` — kernel-level forward+backward of the
      prefix-scheduled streaming block-sparse op over a local+global
      layout (the sparse engine's long-context configuration).

    Wall-clock (best of ``repeats``) is measured untraced; the heap peak
    is a separate tracemalloc-instrumented step, because tracing itself
    slows NumPy dispatch.  ``peak_ratio`` (materializing / streaming) is
    the headline figure: it grows with ``seq`` — the memory wall falling —
    and at short lengths (``seq <= tile``) sits near 1, where the single
    streaming tile degenerates to the materializing shape.
    """
    import tracemalloc

    from repro.models import ModelConfig
    from repro.peft import apply_lora
    from repro.runtime import AttentionConfig, FineTuner, TrainingConfig

    heads = 2
    results: Dict = {"tile": float(tile), "lengths": {}}
    try:
        for seq in lengths:
            cfg = ModelConfig(name=f"longctx-nano-{seq}", family="gpt2",
                              vocab_size=128, max_seq_len=seq, dim=32,
                              num_layers=1, num_heads=heads,
                              activation="gelu", sparsify_init=False)
            ids = np.random.default_rng(11).integers(0, cfg.vocab_size,
                                                     size=(batch, seq))
            entry: Dict = {}
            for label, streaming in (("materializing", False),
                                     ("streaming", True)):
                # The trainer scopes an explicit streaming_attention value
                # around each of its own steps (set + restored per step), so
                # interleaved tuners cannot leak the switch into each other;
                # the bare-kernel measurement below still needs the ambient
                # flag set by hand.
                fused.set_streaming_attention(streaming, tile=tile)
                model = build_model(cfg, seed=0)
                apply_lora(model)
                tuner = FineTuner(model,
                                  TrainingConfig(
                                      attention=AttentionConfig(
                                          streaming=streaming,
                                          streaming_tile=tile)))
                tuner.step(ids)                        # warm-up
                step_s = _best_of(lambda: tuner.step(ids), repeats)
                tracemalloc.start()
                tuner.step(ids)
                _, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                entry[f"{label}_ms_per_token"] = (step_s * 1000.0
                                                  / (batch * seq))
                entry[f"{label}_peak_bytes"] = float(peak)

            layout = _chain_layout(seq, BLOCK_SIZE, heads=heads,
                                   patterns=LONG_CONTEXT_PATTERNS)
            rng = np.random.default_rng(7)
            q, k, v = [rng.normal(size=(batch, heads, seq, 16))
                       .astype(np.float32) for _ in range(3)]
            cache = LayoutGeometryCache()
            cache.lookup(layout, seq)

            def once(q=q, k=k, v=v, layout=layout, cache=cache):
                qt, kt, vt = [Tensor(a, requires_grad=True)
                              for a in (q, k, v)]
                out = block_sparse_attention(qt, kt, vt, layout,
                                             cache=cache, streaming=True)
                out.backward(np.ones_like(out.data))

            once()                                      # warm-up
            kernel_s = _best_of(once, repeats)
            tracemalloc.start()
            once()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            entry["block_sparse_streaming_ms_per_token"] = (
                kernel_s * 1000.0 / (batch * seq))
            entry["block_sparse_streaming_peak_bytes"] = float(peak)
            entry["peak_ratio"] = (entry["materializing_peak_bytes"]
                                   / entry["streaming_peak_bytes"])
            results["lengths"][str(seq)] = entry
    finally:
        fused.set_streaming_attention(False)
    results["wall_seq"] = float(max(lengths))
    results["wall_peak_ratio"] = (
        results["lengths"][str(max(lengths))]["peak_ratio"])
    return results


def bench_prediction_overhead(repeats: int = 20, batch: int = BATCH,
                              seq: int = SEQ, dim: int = 128, heads: int = 8,
                              rank: int = 8, block_size: int = BLOCK_SIZE,
                              reduce_seq: int = 512,
                              reduce_batch: int = 4) -> Dict[str, Dict[str, float]]:
    """Mask-derivation micro-benchmarks: probe, block reduction, matcher.

    * ``probe`` — :meth:`AttentionPredictor.predict_patterns` (stacked
      single-GEMM Q̂/K̂, in-place sigmoid, vectorised matcher) vs. the PR-2
      per-head einsum + scalar-matcher probe;
    * ``block_reduce`` — the two-stage ``np.add.reduceat`` reduction vs. the
      6-D reshape-sum at seq ``reduce_seq`` (the oracle-mode hot spot; the
      acceptance bar is ``speedup > 1``);
    * ``match_many`` — the vectorised one-GEMM pattern matcher vs. the
      scalar per-head/per-pattern loop (``PatternPool.match``).
    """
    from repro.sparsity.exposer import AttentionExposer

    rng = np.random.default_rng(0)
    pool = build_default_pool()
    predictor = AttentionPredictor(dim, heads, rank, block_size, pool, seed=0)
    x = rng.normal(size=(batch, seq, dim)).astype(np.float32)

    optimised_s = _best_of(lambda: predictor.predict_patterns(x), repeats)
    pre_pr_s = _best_of(lambda: pre_pr_predict_patterns(predictor, x), repeats)
    probe = {"optimised_s": optimised_s, "pre_pr_s": pre_pr_s,
             "speedup": pre_pr_s / optimised_s}

    exposer = AttentionExposer(pool, block_size)
    probs = rng.random((reduce_batch, heads, reduce_seq, reduce_seq)).astype(np.float32)
    probs *= np.tril(np.ones((reduce_seq, reduce_seq), dtype=np.float32))
    two_stage_s = _best_of(lambda: exposer.block_reduce(probs), repeats)
    reshape_sum_s = _best_of(lambda: pre_pr_block_reduce(exposer, probs), repeats)
    block_reduce = {"seq": float(reduce_seq), "two_stage_s": two_stage_s,
                    "reshape_sum_s": reshape_sum_s,
                    "speedup": reshape_sum_s / two_stage_s}

    n_blocks = block_count(seq, block_size)
    mass = rng.random((heads, n_blocks, n_blocks)) * causal_block_mask(n_blocks)[None]
    vectorised_s = _best_of(lambda: pool.match_many(mass, coverage=0.9), repeats)
    loop_s = _best_of(
        lambda: [pool.match(mass[h], 0.9) for h in range(heads)], repeats)
    match_many = {"vectorised_s": vectorised_s, "loop_s": loop_s,
                  "speedup": loop_s / vectorised_s}

    return {"probe": probe, "block_reduce": block_reduce,
            "match_many": match_many}


def bench_fused_ops(repeats: int = 20) -> Dict[str, Dict[str, float]]:
    """Per-op forward+backward micro-benchmarks, fused vs. taped composition."""
    rng = np.random.default_rng(0)
    batch, heads, seq, dim, vocab = 4, 8, 128, 64, 1024

    def run(make_loss: Callable[[], Tensor]) -> float:
        def once() -> None:
            make_loss().backward()
        once()
        return _best_of(once, repeats)

    x_attn = [Tensor(rng.normal(size=(batch, heads, seq, dim)).astype(np.float32),
                     requires_grad=True) for _ in range(3)]
    scores = Tensor(rng.normal(size=(batch, heads, seq, seq)).astype(np.float32),
                    requires_grad=True)
    from repro.nn.attention import causal_mask
    mask = causal_mask(seq)

    x_ln = Tensor(rng.normal(size=(batch, seq, 8 * dim)).astype(np.float32),
                  requires_grad=True)
    w_ln = Tensor(np.ones(8 * dim, dtype=np.float32), requires_grad=True)
    b_ln = Tensor(np.zeros(8 * dim, dtype=np.float32), requires_grad=True)

    logits = Tensor(rng.normal(size=(batch, seq, vocab)).astype(np.float32),
                    requires_grad=True)
    targets = rng.integers(0, vocab, size=(batch, seq))

    x_lin = Tensor(rng.normal(size=(batch, seq, 8 * dim)).astype(np.float32),
                   requires_grad=True)
    w_lin = Tensor(rng.normal(0, 0.02, size=(4 * 8 * dim, 8 * dim)).astype(np.float32),
                   requires_grad=True)
    b_lin = Tensor(np.zeros(4 * 8 * dim, dtype=np.float32), requires_grad=True)

    cases: Dict[str, Dict[str, Callable[[], Tensor]]] = {
        "masked_softmax": {
            "fused": lambda: fused.masked_softmax(scores, mask).sum(),
            "reference": lambda: reference.masked_softmax(scores, mask).sum(),
        },
        "attention_core": {
            "fused": lambda: fused.scaled_dot_product_attention(
                x_attn[0], x_attn[1], x_attn[2], mask).sum(),
            "reference": lambda: reference.scaled_dot_product_attention(x_attn[0], x_attn[1], x_attn[2], mask).sum(),
        },
        "layer_norm": {
            "fused": lambda: fused.layer_norm(x_ln, w_ln, b_ln).sum(),
            "reference": lambda: reference.layer_norm(x_ln, w_ln, b_ln).sum(),
        },
        "cross_entropy": {
            "fused": lambda: fused.cross_entropy_logits(logits, targets)[0],
            "reference": lambda: reference.cross_entropy_logits(logits, targets)[0],
        },
        "linear_gelu": {
            "fused": lambda: fused.linear(x_lin, w_lin, b_lin, activation="gelu").sum(),
            "reference": lambda: reference.linear(x_lin, w_lin, b_lin, activation="gelu").sum(),
        },
    }

    results: Dict[str, Dict[str, float]] = {}
    for name, impls in cases.items():
        fused_s = run(impls["fused"])
        reference_s = run(impls["reference"])
        results[name] = {"fused_s": fused_s, "reference_s": reference_s,
                         "speedup": reference_s / fused_s}
    return results


def bench_serve(quick: bool = False) -> Dict:
    """Multi-tenant serving traffic (delegates to bench_serve_traffic.py)."""
    import sys
    from pathlib import Path

    bench_dir = str(Path(__file__).resolve().parent)
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    from bench_serve_traffic import bench_serve_traffic

    if quick:
        return bench_serve_traffic(tenants=4, requests=16, seq_buckets=(16,),
                                   max_resident=2)
    return bench_serve_traffic()


def bench_fault(quick: bool = False, model_name: str = "gpt2-tiny",
                step_timeout_s: float = 300.0) -> Dict:
    """Fault-tolerance cost: recovery wall-time, checkpoint MB/s, CRC tax.

    Three measurements, each against the machinery the ``fault`` test tier
    locks for correctness (this section prices it):

    * ``recovery`` — a 2-worker elastic run with one injected rank crash
      (``worker_crash_before_barrier`` on rank 1's second step).  Records
      the wall-clock of the quiesce -> respawn -> restore -> replay cycle
      and asserts-by-record that exactly one restart happened and the
      final parameter digest still matches an uninterrupted run — bitwise
      recovery, timed.
    * ``checksum`` — the CRC32 tax from the clean run's worker stats.
      Per step the stats give seconds spent checksumming and seconds in
      the comm phase, summed over ranks (summing cancels the rank wait
      asymmetry — one rank's barrier wait is the other's work).  The
      checksum work is deterministic (CRC32 over a fixed number of grad
      bytes), so its *minimum* over steps is the honest steady-state
      cost — any larger sample just caught a preemption inside the
      timed window; comm is wait-dominated and noisy, so its *median*
      over steps is the representative denominator.  Overhead =
      min-checksum / median-comm: integrity verification must stay a
      sliver (<2% on quiet hardware) of the reduction it protects.
    * ``checkpoint`` — :class:`repro.serve.TenantStateStore` save/load
      throughput for one tenant slab (params + m + v), best-of-N over a
      tempdir: the price of the durable tier per MB.
    """
    import tempfile

    from repro.runtime import DataParallelTrainer, FaultInjector, FaultRule
    from repro.runtime.comms import STAT_NAMES
    from repro.serve import TenantStateStore

    # The clean run keeps real (non-quick) shapes even in quick mode: the
    # checksum-overhead ratio needs a comm phase big enough to measure
    # against, and these shapes cost single-digit seconds anyway.
    steps = 6 if quick else 8
    batch, seq = 4, 64
    rng = np.random.default_rng(0)
    data = [rng.integers(0, 64, size=(batch, seq)).astype(np.int64)
            for _ in range(steps)]
    factory = functools.partial(_scaling_tuner, model_name)

    # Clean elastic run: baseline digest/losses + the checksum tax,
    # accumulated across every rank and every step (the per-step stats
    # slots hold that step's values, so the parent can read them after
    # each step() returns).
    chk_idx = STAT_NAMES.index("checksum_s")
    comm_idx = STAT_NAMES.index("comm_s")
    checksum_steps, comm_steps = [], []
    clean_losses = []
    with DataParallelTrainer(factory, workers=2,
                             step_timeout_s=step_timeout_s) as trainer:
        for batch in data:
            loss, _ = trainer.step(batch)
            clean_losses.append(loss)
            stats = trainer._last_stats
            checksum_steps.append(float(stats[:, chk_idx].sum()))
            comm_steps.append(float(stats[:, comm_idx].sum()))
        clean_failures = trainer.profiler.gauges()["comm_checksum_failures"]
        _, clean_digest = trainer.fetch_params()
    checksum_ms = min(checksum_steps) * 1000.0
    comm_ms = float(np.median(comm_steps)) * 1000.0

    # Faulted run: rank 1 dies on its second step; elastic recovery must
    # respawn it and replay to the same digest.  The step timeout is the
    # crash-detection latency (the survivor discovers the death when the
    # grads barrier times out), so it is deliberately short here — it
    # bounds the faulted run's wall clock, and recovery_wall_s measures
    # only the quiesce -> respawn -> restore cycle after detection.
    injector = FaultInjector(
        rules=[FaultRule(site="worker_crash_before_barrier", rank=1,
                         occurrence=2)])
    recovery_start = time.perf_counter()
    with DataParallelTrainer(factory, workers=2, step_timeout_s=15.0,
                             fault_injector=injector) as trainer:
        faulted = trainer.train(data)
    faulted_wall_s = time.perf_counter() - recovery_start
    recovery_wall_s = (faulted.recovery_events[0]["wall_s"]
                       if faulted.recovery_events else 0.0)

    # Durable checkpoint throughput: one tenant slab through the atomic
    # write path (temp + fsync + rename + SHA-256) and back.
    elems = (1 << 17) if quick else (1 << 20)
    slab_rng = np.random.default_rng(7)
    params = slab_rng.standard_normal(elems).astype(np.float32)
    m = slab_rng.standard_normal(elems).astype(np.float32)
    v = np.abs(slab_rng.standard_normal(elems)).astype(np.float32)
    slab_mb = 3 * params.nbytes / 1e6
    ckpt_repeats = 2 if quick else 5
    with tempfile.TemporaryDirectory(prefix="bench-fault-") as tmp:
        store = TenantStateStore(tmp)
        write_s = _best_of(lambda: store.save("bench", 1, params, m, v),
                           ckpt_repeats)
        read_s = _best_of(lambda: store.load("bench"), ckpt_repeats)
        _, r_params, r_m, r_v = store.load("bench")
        roundtrip_ok = (np.array_equal(params, r_params)
                        and np.array_equal(m, r_m) and np.array_equal(v, r_v))

    return {
        "model": model_name,
        "steps": float(steps),
        "recovery": {
            "worker_restarts": float(faulted.worker_restarts),
            "recovery_wall_s": recovery_wall_s,
            "faulted_run_wall_s": faulted_wall_s,
            "digest_match": bool(faulted.param_digest == clean_digest),
            "losses_match": bool(np.array_equal(faulted.losses, clean_losses)),
        },
        "checksum": {
            "checksum_ms_per_step": checksum_ms,
            "comm_ms_per_step": comm_ms,
            "checksum_overhead_pct": (100.0 * checksum_ms / comm_ms
                                      if comm_ms > 0 else 0.0),
            "checksum_failures": clean_failures,
        },
        "checkpoint": {
            "slab_mb": slab_mb,
            "write_s": write_s,
            "read_s": read_s,
            "write_mb_per_s": slab_mb / write_s if write_s > 0 else 0.0,
            "read_mb_per_s": slab_mb / read_s if read_s > 0 else 0.0,
            "roundtrip_bitwise": bool(roundtrip_ok),
        },
    }


def run_benchmark(repeats: int = 5, op_repeats: int = 20,
                  batch: int = BATCH, seq: int = SEQ,
                  predicted_seq: int = PREDICTED_SEQ,
                  predictor_epochs: int = 30,
                  predicted_repeats: int = 3,
                  long_context_max: int = LONG_CONTEXT_LENGTHS[-1],
                  quick: bool = False) -> Dict:
    if quick:
        # Structural smoke: every section runs, at shapes small enough for a
        # CI worker, with single-digit repeats.  The numbers mean nothing;
        # the point is that the harness itself cannot silently rot.
        repeats, op_repeats, predicted_repeats = 1, 2, 1
        batch, seq, predicted_seq, predictor_epochs = 2, 64, 128, 2
    # Calibration grid of the quality section: quarter / half / full of the
    # predicted-step sequence length (128/256/512 at the default config),
    # floored at one block.
    quality_lengths = tuple(sorted({max(BLOCK_SIZE, predicted_seq // 4),
                                    max(BLOCK_SIZE, predicted_seq // 2),
                                    predicted_seq}))
    report = {
        "meta": {
            "dense_model": DENSE_MODEL,
            "sparse_model": SPARSE_MODEL,
            "batch": batch,
            "seq": seq,
            "predicted_seq": predicted_seq,
            "predict_interval": PREDICT_INTERVAL,
            "repeats": repeats,
            "quick": quick,
            "platform": platform.platform(),
            "numpy": np.__version__,
        },
        "dense_step": bench_dense_step(repeats, batch=batch, seq=seq),
        "sparse_step": bench_sparse_step(repeats, batch=batch, seq=seq),
        "step_capture": bench_step_capture(
            repeats=1 if quick else 4, batch=batch, seq=seq,
            predicted_seq=predicted_seq, predictor_epochs=predictor_epochs,
            dense_model="gpt2-tiny" if quick else DENSE_MODEL,
            sparse_model="opt-tiny" if quick else SPARSE_MODEL),
        "full_step": bench_full_step(
            repeats=1 if quick else 4, batch=batch,
            predicted_seq=predicted_seq, predictor_epochs=predictor_epochs,
            sparse_model="opt-tiny" if quick else SPARSE_MODEL),
        "predicted_step": bench_predicted_step(predicted_repeats, batch=batch,
                                               seq=predicted_seq,
                                               predictor_epochs=predictor_epochs),
        "predicted_quality": bench_predicted_quality(
            batch=batch, seq=predicted_seq, predictor_epochs=predictor_epochs,
            lengths=quality_lengths, eval_batches=1 if quick else 3),
        "prediction_overhead": bench_prediction_overhead(op_repeats,
                                                         batch=batch, seq=seq),
        "geometry": bench_geometry(repeats=5 if quick else 50,
                                   seq=128 if quick else 512),
        "sparse_chain": bench_sparse_chain(op_repeats, batch=batch, seq=seq),
        "crossover": bench_crossover(repeats=2 if quick else 10,
                                     seq=128 if quick else 512),
        "optimizer_step": bench_optimizer_step(op_repeats,
                                               n_params=20 if quick else 200),
        "optimizer_regimes": bench_optimizer_regimes(
            repeats=2 if quick else 10,
            sizes=(256, 4096, 16384) if quick else (256, 1024, 4096, 16384, 65536),
            total_elements=200_000 if quick else 2_000_000),
        "embedding_scatter": bench_embedding_scatter(
            op_repeats, vocab=2048 if quick else 50257,
            n_tokens=512 if quick else 8192),
        "long_context": bench_long_context(
            lengths=(64, 128) if quick else
            (tuple(l for l in LONG_CONTEXT_LENGTHS if l <= long_context_max)
             or (max(BLOCK_SIZE * 2,
                     long_context_max // BLOCK_SIZE * BLOCK_SIZE),)),
            repeats=1 if quick else 2),
        "scaling": bench_scaling(steps=3 if quick else 6,
                                 seq=32 if quick else 128),
        "serve": bench_serve(quick=quick),
        "fault": bench_fault(quick=quick),
        "ops": bench_fused_ops(op_repeats),
    }
    return report


def _print_report(report: Dict) -> None:
    dense = report["dense_step"]
    sparse = report["sparse_step"]
    print(f"dense fine-tune step ({report['meta']['dense_model']}, "
          f"batch {report['meta']['batch']} x seq {report['meta']['seq']}):")
    print(f"  fused     {dense['fused_s'] * 1000:8.1f} ms")
    print(f"  reference {dense['reference_s'] * 1000:8.1f} ms")
    print(f"  speedup   {dense['speedup']:8.2f}x")
    print(f"sparse fine-tune step ({report['meta']['sparse_model']}, oracle):")
    print(f"  cached       {sparse['cached_s'] * 1000:8.1f} ms")
    print(f"  uncached     {sparse['uncached_s'] * 1000:8.1f} ms")
    print(f"  pre-PR chain {sparse['pre_pr_chain_s'] * 1000:8.1f} ms")
    print(f"  pre-PR full  {sparse['pre_pr_full_s'] * 1000:8.1f} ms")
    print(f"  cache {sparse['speedup']:.2f}x   chain {sparse['chain_speedup']:.2f}x"
          f"   vs PR-1 step {sparse['pre_pr_speedup']:.2f}x   "
          f"(geometry share {sparse['geometry_fraction']:.1%} of step)")
    capture = report["step_capture"]
    print("step capture (buffer arena + planned tape replay):")
    for mode in ("dense", "oracle", "predicted"):
        row = capture[mode]
        print(f"  {mode:<9} {row['uncaptured_s'] * 1000:8.1f} -> "
              f"{row['captured_s'] * 1000:8.1f} ms/step  "
              f"({row['speedup']:.2f}x)   allocs/step "
              f"{row['captured_allocs_per_step']:.0f}   arena "
              f"{row['arena_mb']:.0f} MiB")
    predicted_row = capture["predicted"]
    print(f"  predicted vs PR-4-form path: "
          f"{predicted_row['pre_pr_s'] * 1000:8.1f} -> "
          f"{predicted_row['captured_s'] * 1000:8.1f} ms/step  "
          f"({predicted_row['pre_pr_speedup']:.2f}x)")
    recap = capture["recapture"]
    print(f"  shape change: {recap['recaptures']:.0f} re-capture, "
          f"{recap['post_change_allocs_per_step']:.0f} allocs/step after")
    full = report["full_step"]
    print(f"full-step compiler (predicted regime, fixed batch, "
          f"interval {int(full['interval'])}):")
    print(f"  interpreted  {full['interpreted_s'] * 1000:8.1f} ms/step")
    print(f"  captured     {full['captured_s'] * 1000:8.1f} ms/step  (PR-5)")
    curve = "  ".join(f"t{t}={s * 1000:.1f}ms"
                      for t, s in sorted(full["threads_curve"].items(),
                                         key=lambda kv: int(kv[0])))
    print(f"  compiled     {full['compiled_s'] * 1000:8.1f} ms/step   "
          f"threads curve: {curve}")
    print(f"  vs captured {full['speedup_vs_captured']:.2f}x   "
          f"vs interpreted {full['speedup_vs_interpreted']:.2f}x   "
          f"replays {full['full_replays']:.0f}   "
          f"fallbacks {full['full_fallbacks']:.0f}   allocs/step "
          f"{full['captured_allocs_per_step']:.0f}")
    predicted = report["predicted_step"]
    interval = int(predicted["interval"])
    print(f"predicted sparse step ({report['meta']['sparse_model']}, LoRA, "
          f"seq {report['meta']['predicted_seq']}, trained probes):")
    print(f"  oracle             {predicted['oracle_s'] * 1000:8.1f} ms/step")
    print(f"  oracle interval {interval}  "
          f"{predicted['oracle_intervalK_s'] * 1000:8.1f} ms/step")
    print(f"  probes interval 1  {predicted['interval1_s'] * 1000:8.1f} ms/step")
    print(f"  probes interval {interval}  "
          f"{predicted['intervalK_s'] * 1000:8.1f} ms/step")
    print(f"  predicted vs oracle {predicted['speedup_vs_oracle']:.2f}x   "
          f"interval win {predicted['interval_speedup']:.2f}x (probes) / "
          f"{predicted['oracle_interval_speedup']:.2f}x (oracle)")
    print(f"  probe overhead {predicted['interval1_prediction_s'] * 1000:.2f} -> "
          f"{predicted['intervalK_prediction_s'] * 1000:.2f} ms/step "
          f"({predicted['prediction_overhead_reduction']:.2f}x less)   "
          f"mask drift {predicted['attention_mask_drift']:.4f}")
    quality = report["predicted_quality"]
    print(f"predicted quality (calibrated probes, grid "
          f"{[int(l) for l in quality['lengths']]}, snap bar "
          f"{quality['snap_coverage']:.2f}):")
    for length, row in quality["per_length"].items():
        print(f"  seq {length:>4}: oracle {row['oracle_sparsity']:.3f}  "
              f"calibrated {row['calibrated_sparsity']:.3f} "
              f"(gap {row['calibrated_gap']:.3f}, recall {row['oracle_recall']:.3f})  "
              f"uncalibrated {row['uncalibrated_sparsity']:.3f} "
              f"(gap {row['uncalibrated_gap']:.3f})")
    print(f"  gap at seq {int(max(quality['lengths']))}: "
          f"{quality['gap']:.3f} calibrated vs {quality['uncalibrated_gap']:.3f} "
          f"uncalibrated ({quality['gap_reduction']:.1f}x tighter)")
    overhead = report["prediction_overhead"]
    probe = overhead["probe"]
    print("prediction overhead (mask derivation in isolation):")
    print(f"  probe      {probe['optimised_s'] * 1e3:8.3f} ms vs "
          f"{probe['pre_pr_s'] * 1e3:8.3f} ms  ({probe['speedup']:.2f}x)")
    reduce = overhead["block_reduce"]
    print(f"  block_reduce@seq{int(reduce['seq'])} "
          f"{reduce['two_stage_s'] * 1e3:8.3f} ms vs "
          f"{reduce['reshape_sum_s'] * 1e3:8.3f} ms  ({reduce['speedup']:.2f}x)")
    matcher = overhead["match_many"]
    print(f"  match_many {matcher['vectorised_s'] * 1e3:8.3f} ms vs "
          f"{matcher['loop_s'] * 1e3:8.3f} ms  ({matcher['speedup']:.2f}x)")
    geom = report["geometry"]
    print(f"sparse geometry per call (seq {int(geom['seq'])}, "
          f"block {int(geom['block_size'])}, nnz {int(geom['layout_nnz'])}):")
    print(f"  compute   {geom['compute_s'] * 1e3:8.3f} ms")
    print(f"  lookup    {geom['lookup_s'] * 1e3:8.3f} ms")
    print(f"  speedup   {geom['speedup']:8.1f}x")
    chain = report["sparse_chain"]
    print(f"fused sparse chain (fwd+bwd, nnz {int(chain['layout_nnz'])}):")
    print(f"  fused     {chain['fused_s'] * 1e3:8.2f} ms")
    print(f"  pre-PR    {chain['pre_pr_s'] * 1e3:8.2f} ms")
    print(f"  speedup   {chain['speedup']:8.2f}x")
    cross = report["crossover"]
    print(f"crossover at seq {int(cross['seq'])} "
          f"(layout sparsity {cross['layout_sparsity']:.2f}):")
    print(f"  dense     {cross['dense_s'] * 1e3:8.2f} ms")
    print(f"  sparse    {cross['sparse_s'] * 1e3:8.2f} ms")
    print(f"  sparse wins by {cross['sparse_vs_dense']:5.2f}x")
    opt = report["optimizer_step"]
    print(f"optimizer step ({int(opt['n_elements'])} elements):")
    print(f"  flat      {opt['flat_s'] * 1e3:8.2f} ms")
    print(f"  loop      {opt['loop_s'] * 1e3:8.2f} ms")
    print(f"  speedup   {opt['speedup']:8.2f}x")
    regimes = report["optimizer_regimes"]
    print(f"optimizer regimes (threshold {int(regimes['threshold_elements'])} "
          f"elements, validated={regimes['threshold_validated']}):")
    for row in regimes["regimes"]:
        print(f"  size {int(row['param_size']):>7} x {int(row['n_params']):>6}: "
              f"flat {row['flat_s'] * 1e3:8.2f} ms  loop {row['loop_s'] * 1e3:8.2f} ms  "
              f"flat wins {row['flat_speedup']:.2f}x")
    scatter = report["embedding_scatter"]
    print(f"embedding scatter (vocab {int(scatter['vocab'])}, "
          f"{int(scatter['n_tokens'])} tokens):")
    print(f"  add.at    {scatter['add_at_s'] * 1e3:8.2f} ms")
    print(f"  scatter   {scatter['scatter_s'] * 1e3:8.2f} ms")
    print(f"  speedup   {scatter['speedup']:8.2f}x")
    long_ctx = report["long_context"]
    print(f"long-context LoRA step (1-layer nano, tile "
          f"{int(long_ctx['tile'])}; peak = tracemalloc bytes):")
    for seq_key, row in long_ctx["lengths"].items():
        print(f"  seq {seq_key:>5}: "
              f"mat {row['materializing_ms_per_token']:6.3f} ms/tok "
              f"{row['materializing_peak_bytes'] / 1e6:8.1f} MB | "
              f"stream {row['streaming_ms_per_token']:6.3f} ms/tok "
              f"{row['streaming_peak_bytes'] / 1e6:8.1f} MB | "
              f"peak ratio {row['peak_ratio']:5.1f}x | "
              f"bs-stream {row['block_sparse_streaming_peak_bytes'] / 1e6:6.1f} MB")
    scaling = report["scaling"]
    print(f"data-parallel scaling ({scaling['model']}, global batch "
          f"{int(scaling['global_batch'])} x seq {int(scaling['seq'])}, "
          f"{int(scaling['cpu_count'])} CPU"
          f"{' — single core: ranks time-slice, speedup not expected' if scaling['single_core'] else ''}):")
    for world, row in scaling["workers"].items():
        print(f"  workers {world}: {row['steps_per_s']:6.2f} steps/s  "
              f"wall {row['step_wall_ms']:7.1f} ms  "
              f"comm {row['comm_ms_per_step']:6.1f} ms  "
              f"speedup {row['speedup_vs_1']:.2f}x  "
              f"eff {row['efficiency']:.2f}")
    serve = report["serve"]
    print(f"multi-tenant serving ({serve['model']}, "
          f"{int(serve['tenants'])} Zipf tenants, "
          f"{int(serve['requests'])} requests):")
    print(f"  {serve['steps_per_s']:8.2f} steps/s  "
          f"p50 {serve['p50_latency_ms']:6.1f} ms  "
          f"p99 {serve['p99_latency_ms']:6.1f} ms  "
          f"warm hit rate {serve['warm_capture_hit_rate']:.3f}  "
          f"evictions {int(serve['tenant_evictions'])}")
    fault = report["fault"]
    recovery = fault["recovery"]
    checksum = fault["checksum"]
    ckpt = fault["checkpoint"]
    print(f"fault tolerance ({fault['model']}, 2 workers):")
    print(f"  recovery   {recovery['recovery_wall_s'] * 1e3:8.1f} ms for "
          f"{int(recovery['worker_restarts'])} rank restart  "
          f"digest match {recovery['digest_match']}  "
          f"losses match {recovery['losses_match']}")
    print(f"  checksum   {checksum['checksum_ms_per_step']:8.3f} ms/step vs "
          f"comm {checksum['comm_ms_per_step']:8.1f} ms/step  "
          f"({checksum['checksum_overhead_pct']:.2f}% overhead)")
    print(f"  checkpoint {ckpt['slab_mb']:6.1f} MB slab: "
          f"write {ckpt['write_mb_per_s']:7.1f} MB/s  "
          f"read {ckpt['read_mb_per_s']:7.1f} MB/s  "
          f"bitwise {ckpt['roundtrip_bitwise']}")
    print("fused ops (forward + backward, best-of-N):")
    for name, row in report["ops"].items():
        print(f"  {name:<16} {row['fused_s'] * 1e3:7.2f} ms vs "
              f"{row['reference_s'] * 1e3:7.2f} ms  ({row['speedup']:.2f}x)")


def main(argv=None) -> Dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON (e.g. BENCH_perf.json)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N repeats for the step benchmarks")
    parser.add_argument("--op-repeats", type=int, default=20,
                        help="best-of-N repeats for the op micro-benchmarks")
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--seq", type=int, default=SEQ)
    parser.add_argument("--predicted-seq", type=int, default=PREDICTED_SEQ,
                        help="sequence length of the predicted_step section")
    parser.add_argument("--predictor-epochs", type=int, default=30,
                        help="offline probe-training epochs for predicted_step")
    parser.add_argument("--predicted-repeats", type=int, default=3,
                        help="best-of-N repeats for the predicted_step windows")
    parser.add_argument("--long-context-max", type=int,
                        default=LONG_CONTEXT_LENGTHS[-1],
                        help="cap on the long_context sequence-length sweep "
                             "(lengths above this are skipped)")
    parser.add_argument("--quick", action="store_true",
                        help="structural smoke: run every section at tiny "
                             "shapes with single repeats (timings are "
                             "meaningless; CI uses this to catch harness "
                             "breakage without flaky timing asserts)")
    args = parser.parse_args(argv)

    if args.json:
        # Fail on an unwritable path *before* spending minutes benchmarking.
        with open(args.json, "a"):
            pass

    report = run_benchmark(repeats=args.repeats, op_repeats=args.op_repeats,
                           batch=args.batch, seq=args.seq,
                           predicted_seq=args.predicted_seq,
                           predictor_epochs=args.predictor_epochs,
                           predicted_repeats=args.predicted_repeats,
                           long_context_max=args.long_context_max,
                           quick=args.quick)
    _print_report(report)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    return report


if __name__ == "__main__":
    main()
