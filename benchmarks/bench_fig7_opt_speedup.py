"""Figure 7: end-to-end execution time per batch and speedup of OPT.

Paper: across two platforms, two OPT sizes, two sequence lengths and three
PEFT methods, LongExposure speeds up end-to-end fine-tuning; the speedup
grows with sequence length (1.16-1.64x at 512 -> 2.3-3.8x at 1024) because
sparse attention changes the score complexity from O(s²) to O(s).

Reproduced shape: measured speedup > 1 and increasing with sequence length on
the executable stand-ins; an analytic roofline estimate for the A100/A6000
platforms is reported alongside for context.
"""

import numpy as np
import pytest

from repro import build_model, get_peft_method
from repro.analysis import format_table
from repro.runtime import PLATFORMS, roofline_step_time
from repro.models import get_config

from conftest import (
    e2e_batches,
    measure_step_time,
    prepare_engine,
)

# Figure 7 is the headline end-to-end result, so it runs on the larger
# executable stand-in (opt-small ~ OPT-1.3B/2.7B) with the longer sequence
# pair; the 256 -> 512 doubling mirrors the paper's 512 -> 1024 doubling.
FIG7_MODEL = "opt-small"
FIG7_SEQ_SHORT = 256
FIG7_SEQ_LONG = 512

RESULTS = {}


@pytest.mark.parametrize("seq_len", [FIG7_SEQ_SHORT, FIG7_SEQ_LONG])
@pytest.mark.parametrize("method", ["lora", "adapter", "bitfit"])
def test_fig7_speedup(benchmark, method, seq_len):
    speedup_holder = {}

    def run():
        dense_model = build_model(FIG7_MODEL, seed=0)
        batches = e2e_batches(dense_model, seq_len, num_batches=1)
        ids = batches[0]

        dense_adapted, _ = get_peft_method(method)(dense_model)
        dense_time = measure_step_time(dense_adapted, ids, repeats=2)

        sparse_model = build_model(FIG7_MODEL, seed=0)
        engine2 = prepare_engine(sparse_model, seq_len)
        sparse_adapted, _ = get_peft_method(method)(sparse_model)
        engine2.install(sparse_adapted)
        try:
            sparse_adapted.loss(ids)          # warm layout caches
            sparse_time = measure_step_time(sparse_adapted, ids, repeats=2)
        finally:
            engine2.uninstall(sparse_adapted)

        speedup_holder.update(dense=dense_time, sparse=sparse_time,
                              attn_sparsity=engine2.stats.mean_attention_sparsity(),
                              mlp_sparsity=engine2.stats.mean_mlp_sparsity())
        return sparse_time

    benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = speedup_holder["dense"] / speedup_holder["sparse"]
    RESULTS[(method, seq_len)] = (speedup_holder["dense"], speedup_holder["sparse"], speedup)
    print(f"\n[Figure 7] {method:8s} seq={seq_len:4d}: "
          f"PEFT baseline {speedup_holder['dense'] * 1000:7.1f}ms  "
          f"+LongExposure {speedup_holder['sparse'] * 1000:7.1f}ms  "
          f"speedup {speedup:4.2f}x  "
          f"(attn sparsity {speedup_holder['attn_sparsity']:.2f}, "
          f"mlp sparsity {speedup_holder['mlp_sparsity']:.2f})")
    assert speedup > 0.75, "sparse path should not be drastically slower"


def test_fig7_summary_and_roofline():
    if RESULTS:
        rows = [[m, s, f"{d * 1000:.1f}", f"{sp * 1000:.1f}", f"{d / sp:.2f}x"]
                for (m, s), (d, sp, _) in sorted(RESULTS.items())]
        print("\n" + format_table(["method", "seq", "PEFT ms", "+LongExposure ms", "speedup"],
                                  rows, title="Figure 7 reproduction (measured, CPU substrate)"))
        # Speedups should not shrink when the sequence length grows.
        for method in {m for m, _ in RESULTS}:
            short = RESULTS.get((method, FIG7_SEQ_SHORT))
            long = RESULTS.get((method, FIG7_SEQ_LONG))
            if short and long:
                assert long[2] >= short[2] * 0.85

    # Analytic platform estimates (paper-scale models, paper platforms).
    rows = []
    for model_name in ["opt-1.3b", "opt-2.7b"]:
        for seq in [512, 1024]:
            cfg = get_config(model_name)
            for platform in PLATFORMS.values():
                dense = roofline_step_time(cfg, platform, 4, seq)
                sparse = roofline_step_time(cfg, platform, 4, seq,
                                            attention_density=0.4, mlp_density=0.55)
                rows.append([model_name, seq, platform.name,
                             f"{dense * 1000:.0f}", f"{sparse * 1000:.0f}",
                             f"{dense / sparse:.2f}x"])
    print("\n" + format_table(
        ["model", "seq", "platform", "dense est. ms", "LongExposure est. ms", "speedup"],
        rows, title="Figure 7 companion: analytic roofline estimates at paper scale"))
