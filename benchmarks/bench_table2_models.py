"""Table II: model configurations used in the evaluation.

This bench validates the configuration registry (paper-scale entries and
their executable stand-ins) and reports the mapping used throughout the
harness, including parameter counts and the batch/sequence settings.
"""

from repro.analysis import format_table
from repro.models import build_model, get_config
from repro.models.config import PAPER_TO_EXECUTABLE

PAPER_SETTINGS = [
    ("opt-350m", [2, 4], [512, 1024]),
    ("opt-1.3b", [2, 4], [512, 1024]),
    ("opt-2.7b", [2, 4], [512, 1024]),
    ("gpt2-large", [4, 8], [512, 1024]),
    ("gpt2-xl", [4, 8], [512, 1024]),
]


def test_table2_model_registry(benchmark):
    rows = []

    def build():
        total = 0
        for paper_name, batches, seqs in PAPER_SETTINGS:
            paper = get_config(paper_name)
            executable = get_config(PAPER_TO_EXECUTABLE[paper_name])
            model = build_model(executable.name, seed=0)
            total += model.num_parameters()
            rows.append([paper_name, f"{paper.num_parameters() / 1e6:.0f}M",
                         "/".join(map(str, batches)), "/".join(map(str, seqs)),
                         executable.name, f"{model.num_parameters() / 1e3:.0f}K",
                         paper.activation])
        return total

    benchmark.pedantic(build, rounds=1, iterations=1)
    print("\n" + format_table(
        ["paper model", "params", "batch", "seq len", "executable stand-in",
         "stand-in params", "activation"],
        rows, title="Table II reproduction: evaluation models"))
    assert len(rows) == len(PAPER_SETTINGS)
