"""Table III: downstream tasks used for accuracy validation.

Reports the five synthetic task suites (PIQA / Winogrande / RTE / COPA /
HellaSwag analogues), their descriptions and sizes, and checks the scoring
protocol runs end to end on an untrained model.
"""

from repro.analysis import format_table
from repro.data import build_task_suite, evaluate_model_on_task
from repro.models import build_model


def test_table3_task_suite(benchmark):
    suite = build_task_suite(examples_per_task=10, seed=0)
    model = build_model("opt-tiny", seed=0)
    results = {}

    def evaluate_all():
        for name, task in suite.tasks.items():
            results[name] = evaluate_model_on_task(model, task, suite.tokenizer,
                                                   vocab_size=model.config.vocab_size,
                                                   max_examples=6)
        return len(results)

    benchmark.pedantic(evaluate_all, rounds=1, iterations=1)
    rows = [[name, task.description, len(task), f"{results[name]['accuracy']:.2f}"]
            for name, task in suite.tasks.items()]
    print("\n" + format_table(["task", "description", "examples", "untrained acc"],
                              rows, title="Table III reproduction: downstream tasks"))
    assert set(results) == {"piqa", "winogrande", "rte", "copa", "hellaswag"}
